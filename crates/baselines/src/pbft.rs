//! pBFT (Castro–Liskov) — and, with [`PbftConfig::accountable`], a
//! Polygraph-style accountable variant.
//!
//! Normal case: `PrePrepare` (primary → all), `Prepare` (all → all),
//! `Commit` (all → all, carrying the 2f+1 prepare certificate as in the
//! authenticated variant), quorum `2f + 1` with `f = ⌊(n−1)/3⌋`. View
//! change on timeout. The accountable variant appends a certificate
//! cross-exchange phase (`CertExchange`, all → all, carrying the full
//! commit-certificate set) from which replicas build Proof-of-Fraud against
//! double-signers — the same mechanism Polygraph (Civit et al.) and pRFT's
//! Reveal phase use, and the source of the `O(κ·n⁴)` bits in Table 3.

use prft_crypto::{KeyRegistry, SecretKey, Signable, Signed, Slot, KAPPA};
use prft_sim::{Context, Node, SimTime, TimerId, WireMessage};
use prft_types::{Digest, Encoder, NodeId};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Protocol phases (slot ids for signatures).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PbftPhase {
    /// Primary proposal.
    PrePrepare,
    /// First all-to-all round.
    Prepare,
    /// Second all-to-all round.
    Commit,
    /// Polygraph-style certificate cross-exchange.
    CertExchange,
    /// View change.
    ViewChange,
}

impl PbftPhase {
    fn slot_id(self) -> u8 {
        match self {
            PbftPhase::PrePrepare => 0,
            PbftPhase::Prepare => 1,
            PbftPhase::Commit => 2,
            PbftPhase::CertExchange => 3,
            PbftPhase::ViewChange => 4,
        }
    }
}

/// The signed unit: "`signer` endorses `value` for (`view`, `seq`) in
/// `phase`".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PbftBallot {
    /// Current view.
    pub view: u64,
    /// Sequence number being agreed.
    pub seq: u64,
    /// Phase.
    pub phase: PbftPhase,
    /// Endorsed request digest.
    pub value: Digest,
}

impl Signable for PbftBallot {
    fn domain(&self) -> &'static str {
        "pbft/ballot"
    }

    fn slot(&self) -> Slot {
        // Views and sequence numbers are both bounded in simulation; pack
        // them so conflicts are detected per (view, seq, phase).
        Slot {
            round: (self.view << 32) | (self.seq & 0xffff_ffff),
            phase: self.phase.slot_id(),
        }
    }

    fn signable_bytes(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.bytes(&self.value.0);
        e.into_bytes()
    }
}

/// A commit entry in the cert-exchange phase: the commit ballot plus its
/// prepare certificate (what makes the exchange `O(κ·n²)` per message).
#[derive(Debug, Clone)]
pub struct CommitEntry {
    /// The commit ballot.
    pub commit: Signed<PbftBallot>,
    /// Its 2f+1 prepare certificate.
    pub prepares: Vec<Signed<PbftBallot>>,
}

const BALLOT_BYTES: usize = 32 + 9 + KAPPA;

impl CommitEntry {
    fn wire_bytes(&self) -> usize {
        BALLOT_BYTES * (1 + self.prepares.len())
    }
}

/// pBFT wire messages.
#[derive(Debug, Clone)]
pub enum PbftMsg {
    /// Primary → all.
    PrePrepare {
        /// The signed proposal ballot.
        ballot: Signed<PbftBallot>,
        /// Simulated request payload size.
        payload: usize,
    },
    /// All → all.
    Prepare {
        /// The signed prepare ballot.
        ballot: Signed<PbftBallot>,
    },
    /// All → all with prepare certificate.
    Commit {
        /// The signed commit ballot.
        ballot: Signed<PbftBallot>,
        /// 2f+1 prepares justifying it.
        prepares: Vec<Signed<PbftBallot>>,
    },
    /// Accountable variant only: all → all with the commit-certificate set.
    CertExchange {
        /// The sender's view of the committed certificates.
        entries: Vec<CommitEntry>,
        /// Sender (unsigned container; the entries are all signed).
        sender: NodeId,
    },
    /// Timeout escalation.
    ViewChange {
        /// Signed view-change ballot (value = ⊥, view = target view).
        ballot: Signed<PbftBallot>,
    },
}

impl WireMessage for PbftMsg {
    fn kind(&self) -> &'static str {
        match self {
            PbftMsg::PrePrepare { .. } => "PrePrepare",
            PbftMsg::Prepare { .. } => "Prepare",
            PbftMsg::Commit { .. } => "Commit",
            PbftMsg::CertExchange { .. } => "CertExchange",
            PbftMsg::ViewChange { .. } => "ViewChange",
        }
    }

    fn wire_bytes(&self) -> usize {
        match self {
            PbftMsg::PrePrepare { payload, .. } => BALLOT_BYTES + payload,
            PbftMsg::Prepare { .. } => BALLOT_BYTES,
            PbftMsg::Commit { prepares, .. } => BALLOT_BYTES * (1 + prepares.len()),
            PbftMsg::CertExchange { entries, .. } => {
                8 + entries.iter().map(CommitEntry::wire_bytes).sum::<usize>()
            }
            PbftMsg::ViewChange { .. } => BALLOT_BYTES,
        }
    }
}

/// Behaviour mode of a replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PbftMode {
    /// Follow the protocol.
    Honest,
    /// Prepare/commit every value seen — the classic safety adversary.
    VoteAll,
    /// As primary, send different values to the two halves of the
    /// committee (seed of a split-brain when combined with `VoteAll`
    /// helpers and a partition).
    EquivocatingPrimary,
}

/// Configuration.
#[derive(Debug, Clone)]
pub struct PbftConfig {
    /// Committee size.
    pub n: usize,
    /// Fault bound `f = ⌊(n−1)/3⌋` (overridable for bound experiments).
    pub f: usize,
    /// Per-sequence timeout before view change.
    pub timeout: SimTime,
    /// Sequences to decide before going passive.
    pub max_seqs: u64,
    /// Request payload size in bytes.
    pub payload: usize,
    /// Enables the Polygraph-style cert-exchange + fraud detection.
    pub accountable: bool,
}

impl PbftConfig {
    /// Standard configuration for `n` replicas.
    pub fn new(n: usize, max_seqs: u64) -> Self {
        PbftConfig {
            n,
            f: (n - 1) / 3,
            timeout: SimTime(400),
            max_seqs,
            payload: 256,
            accountable: false,
        }
    }

    /// Enables accountability (Polygraph variant).
    #[must_use]
    pub fn accountable(mut self) -> Self {
        self.accountable = true;
        self
    }

    fn quorum(&self) -> usize {
        // n − f: the general BFT quorum (equals 2f+1 at n = 3f+1); two
        // quorums intersect in n − 2f > f replicas whenever n > 3f.
        self.n - self.f
    }
}

/// Observable outcome counters.
#[derive(Debug, Clone, Default)]
pub struct PbftStats {
    /// Decided (seq → value).
    pub decided: BTreeMap<u64, Digest>,
    /// View changes entered.
    pub view_changes: u64,
    /// Players convicted of double-signing (accountable variant).
    pub convicted: BTreeSet<NodeId>,
}

/// One pBFT replica.
pub struct PbftReplica {
    cfg: PbftConfig,
    key: SecretKey,
    registry: KeyRegistry,
    mode: PbftMode,

    view: u64,
    seq: u64,
    passive: bool,
    timer: Option<(TimerId, u64, u64)>, // (id, view, seq)

    proposed: BTreeSet<u64>,
    prepared: bool,
    committed: bool,
    exchanged: bool,
    prepares: HashMap<Digest, BTreeMap<NodeId, Signed<PbftBallot>>>,
    commits: HashMap<Digest, BTreeMap<NodeId, CommitEntry>>,
    vc_votes: BTreeMap<u64, BTreeSet<NodeId>>,
    first_sig: HashMap<(NodeId, Slot), Signed<PbftBallot>>,

    stats: PbftStats,
}

impl PbftReplica {
    /// Creates a replica.
    pub fn new(cfg: PbftConfig, key: SecretKey, registry: KeyRegistry, mode: PbftMode) -> Self {
        PbftReplica {
            cfg,
            key,
            registry,
            mode,
            view: 0,
            seq: 0,
            passive: false,
            timer: None,
            proposed: BTreeSet::new(),
            prepared: false,
            committed: false,
            exchanged: false,
            prepares: HashMap::new(),
            commits: HashMap::new(),
            vc_votes: BTreeMap::new(),
            first_sig: HashMap::new(),
            stats: PbftStats::default(),
        }
    }

    /// Outcome counters.
    pub fn stats(&self) -> &PbftStats {
        &self.stats
    }

    /// The decided log as a vector (gaps never occur: one seq at a time).
    pub fn log(&self) -> Vec<Digest> {
        self.stats.decided.values().copied().collect()
    }

    fn id(&self) -> NodeId {
        self.key.signer()
    }

    fn primary(&self) -> NodeId {
        NodeId((self.view % self.cfg.n as u64) as usize)
    }

    fn request_value(&self) -> Digest {
        // The "client request" for this sequence: deterministic content.
        Digest::of_bytes(&[b"pbft-req".as_slice(), &self.seq.to_le_bytes()].concat())
    }

    fn ballot(&self, phase: PbftPhase, value: Digest) -> Signed<PbftBallot> {
        Signed::sign(
            PbftBallot {
                view: self.view,
                seq: self.seq,
                phase,
                value,
            },
            &self.key,
        )
    }

    fn observe(&mut self, ballot: &Signed<PbftBallot>) {
        if !self.cfg.accountable {
            return;
        }
        let key = (ballot.signer(), ballot.payload.slot());
        match self.first_sig.get(&key) {
            None => {
                self.first_sig.insert(key, ballot.clone());
            }
            Some(first) if first.payload == ballot.payload => {}
            Some(_) => {
                self.stats.convicted.insert(ballot.signer());
            }
        }
    }

    fn start_seq(&mut self, ctx: &mut Context<PbftMsg>) {
        if self.seq >= self.cfg.max_seqs {
            self.passive = true;
            self.timer = None;
            return;
        }
        self.prepared = false;
        self.committed = false;
        self.exchanged = false;
        self.prepares.clear();
        self.commits.clear();
        let id = ctx.set_timer(self.cfg.timeout);
        self.timer = Some((id, self.view, self.seq));

        if self.primary() == self.id() && self.proposed.insert(self.seq) {
            match self.mode {
                PbftMode::EquivocatingPrimary => {
                    let va = self.request_value();
                    let vb =
                        Digest::of_bytes(&[b"equiv".as_slice(), &self.seq.to_le_bytes()].concat());
                    let ba = self.ballot(PbftPhase::PrePrepare, va);
                    let bb = self.ballot(PbftPhase::PrePrepare, vb);
                    let payload = self.cfg.payload;
                    let me = self.id();
                    for i in 0..self.cfg.n {
                        let to = NodeId(i);
                        if to == me {
                            // The byzantine primary knows both of its own
                            // proposals and will vote for everything.
                            ctx.send(
                                to,
                                PbftMsg::PrePrepare {
                                    ballot: ba.clone(),
                                    payload,
                                },
                            );
                            ctx.send(
                                to,
                                PbftMsg::PrePrepare {
                                    ballot: bb.clone(),
                                    payload,
                                },
                            );
                        } else if i < self.cfg.n / 2 {
                            ctx.send(
                                to,
                                PbftMsg::PrePrepare {
                                    ballot: ba.clone(),
                                    payload,
                                },
                            );
                        } else {
                            ctx.send(
                                to,
                                PbftMsg::PrePrepare {
                                    ballot: bb.clone(),
                                    payload,
                                },
                            );
                        }
                    }
                }
                _ => {
                    let ballot = self.ballot(PbftPhase::PrePrepare, self.request_value());
                    ctx.broadcast(PbftMsg::PrePrepare {
                        ballot,
                        payload: self.cfg.payload,
                    });
                }
            }
        }
    }

    fn current(&self, ballot: &Signed<PbftBallot>) -> bool {
        ballot.payload.view == self.view && ballot.payload.seq == self.seq
    }

    fn on_preprepare(&mut self, ctx: &mut Context<PbftMsg>, ballot: Signed<PbftBallot>) {
        if !ballot.verify(&self.registry)
            || ballot.signer() != self.primary()
            || !self.current(&ballot)
            || ballot.payload.phase != PbftPhase::PrePrepare
        {
            return;
        }
        self.observe(&ballot);
        let value = ballot.payload.value;
        let prepare = self.ballot(PbftPhase::Prepare, value);
        match self.mode {
            // Byzantine modes prepare for everything, even conflicts.
            PbftMode::VoteAll | PbftMode::EquivocatingPrimary => {
                ctx.broadcast(PbftMsg::Prepare { ballot: prepare });
            }
            PbftMode::Honest => {
                if !self.prepared {
                    self.prepared = true;
                    ctx.broadcast(PbftMsg::Prepare { ballot: prepare });
                }
            }
        }
    }

    fn on_prepare(&mut self, ctx: &mut Context<PbftMsg>, ballot: Signed<PbftBallot>) {
        if !ballot.verify(&self.registry)
            || !self.current(&ballot)
            || ballot.payload.phase != PbftPhase::Prepare
        {
            return;
        }
        self.observe(&ballot);
        let value = ballot.payload.value;
        self.prepares
            .entry(value)
            .or_default()
            .insert(ballot.signer(), ballot);
        let quorum = self.cfg.quorum();
        let reached = self.prepares.get(&value).map_or(0, BTreeMap::len) >= quorum;
        if !reached {
            return;
        }
        let send_commit = match self.mode {
            PbftMode::VoteAll | PbftMode::EquivocatingPrimary => true,
            PbftMode::Honest => !self.committed,
        };
        if send_commit {
            self.committed = true;
            let prepares: Vec<Signed<PbftBallot>> = self.prepares[&value]
                .values()
                .take(quorum)
                .cloned()
                .collect();
            let commit = self.ballot(PbftPhase::Commit, value);
            ctx.broadcast(PbftMsg::Commit {
                ballot: commit,
                prepares,
            });
        }
    }

    fn on_commit(
        &mut self,
        ctx: &mut Context<PbftMsg>,
        ballot: Signed<PbftBallot>,
        prepares: Vec<Signed<PbftBallot>>,
    ) {
        if !ballot.verify(&self.registry)
            || !self.current(&ballot)
            || ballot.payload.phase != PbftPhase::Commit
        {
            return;
        }
        // Validate the prepare certificate.
        let value = ballot.payload.value;
        let mut signers = BTreeSet::new();
        for p in &prepares {
            if p.payload.phase != PbftPhase::Prepare
                || p.payload.view != ballot.payload.view
                || p.payload.seq != ballot.payload.seq
                || p.payload.value != value
                || !p.verify(&self.registry)
            {
                return;
            }
            signers.insert(p.signer());
        }
        if signers.len() < self.cfg.quorum() {
            return;
        }
        self.observe(&ballot);
        for p in &prepares {
            self.observe(p);
        }
        self.commits.entry(value).or_default().insert(
            ballot.signer(),
            CommitEntry {
                commit: ballot,
                prepares,
            },
        );
        if self.commits.get(&value).map_or(0, BTreeMap::len) >= self.cfg.quorum() {
            self.decide(ctx, value);
        }
    }

    fn decide(&mut self, ctx: &mut Context<PbftMsg>, value: Digest) {
        if self.stats.decided.contains_key(&self.seq) {
            return;
        }
        if self.cfg.accountable && !self.exchanged {
            self.exchanged = true;
            let entries: Vec<CommitEntry> = self.commits[&value]
                .values()
                .take(self.cfg.quorum())
                .cloned()
                .collect();
            ctx.broadcast(PbftMsg::CertExchange {
                entries,
                sender: self.id(),
            });
        }
        self.stats.decided.insert(self.seq, value);
        self.seq += 1;
        self.start_seq(ctx);
    }

    fn on_cert_exchange(&mut self, entries: Vec<CommitEntry>) {
        if !self.cfg.accountable {
            return;
        }
        for entry in entries {
            if entry.commit.verify(&self.registry) {
                self.observe(&entry.commit);
            }
            for p in entry.prepares {
                if p.verify(&self.registry) {
                    self.observe(&p);
                }
            }
        }
    }

    fn on_view_change(&mut self, ctx: &mut Context<PbftMsg>, ballot: Signed<PbftBallot>) {
        if !ballot.verify(&self.registry) || ballot.payload.phase != PbftPhase::ViewChange {
            return;
        }
        let target = ballot.payload.view;
        if target <= self.view {
            return;
        }
        let me = self.id();
        let votes = self.vc_votes.entry(target).or_default();
        votes.insert(ballot.signer());
        let count = votes.len();
        let joined = votes.contains(&me);
        // Join once f+1 want out (someone honest timed out)…
        if count > self.cfg.f && !joined {
            self.send_view_change(ctx, target);
        }
        // …and switch on a 2f+1 quorum.
        if count >= self.cfg.quorum() {
            self.view = target;
            self.stats.view_changes += 1;
            self.start_seq(ctx);
        }
    }

    fn send_view_change(&mut self, ctx: &mut Context<PbftMsg>, target: u64) {
        let ballot = Signed::sign(
            PbftBallot {
                view: target,
                seq: self.seq,
                phase: PbftPhase::ViewChange,
                value: Digest::ZERO,
            },
            &self.key,
        );
        let me = self.id();
        self.vc_votes.entry(target).or_default().insert(me);
        ctx.broadcast(PbftMsg::ViewChange { ballot });
    }
}

impl Node for PbftReplica {
    type Msg = PbftMsg;

    fn on_start(&mut self, ctx: &mut Context<PbftMsg>) {
        self.start_seq(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<PbftMsg>, _from: NodeId, msg: PbftMsg) {
        if self.passive {
            return;
        }
        match msg {
            PbftMsg::PrePrepare { ballot, .. } => self.on_preprepare(ctx, ballot),
            PbftMsg::Prepare { ballot } => self.on_prepare(ctx, ballot),
            PbftMsg::Commit { ballot, prepares } => self.on_commit(ctx, ballot, prepares),
            PbftMsg::CertExchange { entries, .. } => self.on_cert_exchange(entries),
            PbftMsg::ViewChange { ballot } => self.on_view_change(ctx, ballot),
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<PbftMsg>, timer: TimerId) {
        if self.passive {
            return;
        }
        let Some((id, view, seq)) = self.timer else {
            return;
        };
        if id != timer || view != self.view || seq != self.seq {
            return;
        }
        let target = self.view + 1;
        self.send_view_change(ctx, target);
        // Keep a timer armed so repeated failures keep escalating.
        let tid = ctx.set_timer(self.cfg.timeout);
        self.timer = Some((tid, self.view, self.seq));
    }
}

/// Builds a pBFT committee with the given per-replica modes.
pub fn committee(
    cfg: &PbftConfig,
    seed: u64,
    modes: &[PbftMode],
) -> (Vec<PbftReplica>, KeyRegistry) {
    assert_eq!(modes.len(), cfg.n);
    let (registry, keys) = KeyRegistry::trusted_setup(cfg.n, seed);
    let replicas = keys
        .into_iter()
        .zip(modes)
        .map(|(key, &mode)| PbftReplica::new(cfg.clone(), key, registry.clone(), mode))
        .collect();
    (replicas, registry)
}

#[cfg(test)]
mod tests {
    use super::*;
    use prft_sim::{RunOutcome, SimRng, Simulation};

    fn run(
        n: usize,
        seqs: u64,
        accountable: bool,
        modes: Option<Vec<PbftMode>>,
    ) -> Simulation<PbftReplica> {
        let mut cfg = PbftConfig::new(n, seqs);
        if accountable {
            cfg = cfg.accountable();
        }
        let modes = modes.unwrap_or_else(|| vec![PbftMode::Honest; n]);
        let (replicas, _) = committee(&cfg, 42, &modes);
        let mut sim = Simulation::new(
            replicas,
            Box::new(prft_net::SynchronousNet::new(SimTime(10))),
            7,
        );
        sim.run_until(SimTime(1_000_000));
        sim
    }

    #[test]
    fn honest_committee_decides_in_agreement() {
        let sim = run(7, 5, false, None);
        let logs: Vec<Vec<Digest>> = (0..7).map(|i| sim.node(NodeId(i)).log()).collect();
        assert!(logs.iter().all(|l| l.len() == 5), "all decide 5 seqs");
        assert!(logs.iter().all(|l| *l == logs[0]), "identical logs");
    }

    #[test]
    fn crash_within_f_tolerated() {
        let cfg = PbftConfig::new(7, 4); // f = 2
        let (replicas, _) = committee(&cfg, 1, &[PbftMode::Honest; 7]);
        let mut sim = Simulation::new(
            replicas,
            Box::new(prft_net::SynchronousNet::new(SimTime(10))),
            3,
        );
        sim.crash(NodeId(5));
        sim.crash(NodeId(6));
        sim.run_until(SimTime(1_000_000));
        for i in 0..5 {
            assert_eq!(sim.node(NodeId(i)).log().len(), 4, "P{i} decided");
        }
    }

    #[test]
    fn crash_beyond_f_stalls_safely() {
        let cfg = PbftConfig::new(7, 4);
        let (replicas, _) = committee(&cfg, 1, &[PbftMode::Honest; 7]);
        let mut sim = Simulation::new(
            replicas,
            Box::new(prft_net::SynchronousNet::new(SimTime(10))),
            3,
        );
        for i in 4..7 {
            sim.crash(NodeId(i));
        }
        sim.run_until(SimTime(100_000));
        for i in 0..4 {
            assert!(
                sim.node(NodeId(i)).log().is_empty(),
                "no quorum, no decision"
            );
        }
    }

    #[test]
    fn crashed_primary_triggers_view_change() {
        let cfg = PbftConfig::new(7, 3);
        let (replicas, _) = committee(&cfg, 1, &[PbftMode::Honest; 7]);
        let mut sim = Simulation::new(
            replicas,
            Box::new(prft_net::SynchronousNet::new(SimTime(10))),
            3,
        );
        sim.crash(NodeId(0)); // primary of view 0
        sim.run_until(SimTime(1_000_000));
        let n1 = sim.node(NodeId(1));
        assert!(n1.stats().view_changes > 0);
        assert_eq!(n1.log().len(), 3, "progress under the new primary");
    }

    #[test]
    fn accountable_variant_adds_cert_exchange() {
        let plain = run(7, 3, false, None);
        let acc = run(7, 3, true, None);
        assert_eq!(plain.meter().kind("CertExchange").count, 0);
        assert!(acc.meter().kind("CertExchange").count > 0);
        assert!(
            acc.meter().total_bytes() > 2 * plain.meter().total_bytes(),
            "accountability costs roughly a factor n in bits"
        );
    }

    #[test]
    fn accountable_variant_convicts_equivocators() {
        // Equivocating primary + two vote-all helpers (f = 2 for n = 7):
        // both halves can prepare, and the cert exchange reveals the
        // double-signers to everyone.
        let mut modes = vec![PbftMode::Honest; 7];
        modes[0] = PbftMode::EquivocatingPrimary;
        modes[1] = PbftMode::VoteAll;
        modes[2] = PbftMode::VoteAll;
        let sim = run(7, 2, true, Some(modes));
        let mut convicted_somewhere = BTreeSet::new();
        for i in 3..7 {
            convicted_somewhere.extend(sim.node(NodeId(i)).stats().convicted.iter().copied());
        }
        assert!(
            convicted_somewhere.contains(&NodeId(0))
                || convicted_somewhere.contains(&NodeId(1))
                || convicted_somewhere.contains(&NodeId(2)),
            "some double-signer is convicted: {convicted_somewhere:?}"
        );
        // Honest replicas are never convicted.
        for honest in 3..7 {
            assert!(!convicted_somewhere.contains(&NodeId(honest)));
        }
    }

    #[test]
    fn message_complexity_scales_quadratically() {
        let m8 = {
            let sim = run(8, 3, false, None);
            sim.meter().kind("Prepare").count as f64 / 3.0
        };
        let m16 = {
            let sim = run(16, 3, false, None);
            sim.meter().kind("Prepare").count as f64 / 3.0
        };
        let ratio = m16 / m8;
        assert!(
            (3.0..5.0).contains(&ratio),
            "n² scaling: doubling n ≈ 4× prepares (got {ratio})"
        );
        let _ = SimRng::new(0);
        let _ = RunOutcome::Quiescent;
    }
}
