//! Signed payloads with domain separation and slot binding.

use crate::{KeyRegistry, SecretKey, Sha256, Signature, KAPPA};
use prft_types::{Digest, NodeId};

/// The (round, phase) coordinate a signed payload belongs to.
///
/// Double-signing (`π_ds`) is defined by the paper as signing two
/// *conflicting messages in the same phase of the same round*; the slot is
/// what makes two signatures comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Slot {
    /// Consensus round.
    pub round: u64,
    /// Protocol phase within the round (protocol-defined numbering).
    pub phase: u8,
}

/// A payload that can be signed.
///
/// Implementations must include every semantically relevant field in
/// [`Signable::signable_bytes`]; the domain tag and slot are mixed into the
/// signed digest automatically, so equal bytes in different domains or slots
/// never produce interchangeable signatures.
pub trait Signable {
    /// Domain-separation tag (e.g. `"Vote"`, `"Commit"`).
    fn domain(&self) -> &'static str;
    /// The (round, phase) slot this payload occupies.
    fn slot(&self) -> Slot;
    /// Canonical bytes of the payload content.
    fn signable_bytes(&self) -> Vec<u8>;

    /// The digest that is actually signed: `SHA-256(domain ‖ slot ‖ bytes)`.
    fn signing_digest(&self) -> Digest {
        Sha256::digest_parts(&[
            self.domain().as_bytes(),
            &self.slot().round.to_le_bytes(),
            &[self.slot().phase],
            &self.signable_bytes(),
        ])
    }
}

/// A payload together with a signature over its signing digest.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Signed<T> {
    /// The signed payload.
    pub payload: T,
    /// The signature over [`Signable::signing_digest`].
    pub sig: Signature,
}

impl<T: Signable> Signed<T> {
    /// Signs `payload` with `key`.
    pub fn sign(payload: T, key: &SecretKey) -> Signed<T> {
        let digest = payload.signing_digest();
        Signed {
            sig: key.sign(digest),
            payload,
        }
    }

    /// Verifies the signature against the registry.
    pub fn verify(&self, registry: &KeyRegistry) -> bool {
        registry.verify(self.payload.signing_digest(), &self.sig)
    }

    /// The claimed signer.
    pub fn signer(&self) -> NodeId {
        self.sig.signer()
    }

    /// The slot of the signed payload.
    pub fn slot(&self) -> Slot {
        self.payload.slot()
    }

    /// Wire size: payload content bytes + one signature (κ).
    pub fn wire_bytes(&self) -> usize {
        self.payload.signable_bytes().len() + KAPPA
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prft_types::Encoder;

    #[derive(Clone, PartialEq, Eq, Debug)]
    struct Msg {
        domain: &'static str,
        round: u64,
        phase: u8,
        body: u8,
    }

    impl Signable for Msg {
        fn domain(&self) -> &'static str {
            self.domain
        }
        fn slot(&self) -> Slot {
            Slot {
                round: self.round,
                phase: self.phase,
            }
        }
        fn signable_bytes(&self) -> Vec<u8> {
            let mut e = Encoder::new();
            e.u8(self.body);
            e.into_bytes()
        }
    }

    fn msg(body: u8) -> Msg {
        Msg {
            domain: "Test",
            round: 1,
            phase: 0,
            body,
        }
    }

    #[test]
    fn sign_and_verify() {
        let (reg, keys) = KeyRegistry::trusted_setup(2, 1);
        let s = Signed::sign(msg(7), &keys[1]);
        assert!(s.verify(&reg));
        assert_eq!(s.signer(), NodeId(1));
        assert_eq!(s.slot(), Slot { round: 1, phase: 0 });
    }

    #[test]
    fn tampered_payload_fails() {
        let (reg, keys) = KeyRegistry::trusted_setup(1, 1);
        let mut s = Signed::sign(msg(7), &keys[0]);
        s.payload.body = 8;
        assert!(!s.verify(&reg));
    }

    #[test]
    fn domain_separation() {
        // Identical bytes + slot but different domains → different digests.
        let a = Msg {
            domain: "Vote",
            ..msg(7)
        };
        let b = Msg {
            domain: "Commit",
            ..msg(7)
        };
        assert_ne!(a.signing_digest(), b.signing_digest());
    }

    #[test]
    fn slot_separation() {
        let a = Msg { round: 1, ..msg(7) };
        let b = Msg { round: 2, ..msg(7) };
        assert_ne!(a.signing_digest(), b.signing_digest());
        let c = Msg { phase: 1, ..msg(7) };
        assert_ne!(a.signing_digest(), c.signing_digest());
    }

    #[test]
    fn signature_not_transferable_between_payloads() {
        let (reg, keys) = KeyRegistry::trusted_setup(1, 1);
        let a = Signed::sign(msg(7), &keys[0]);
        let forged = Signed {
            payload: msg(8),
            sig: a.sig,
        };
        assert!(!forged.verify(&reg));
    }

    #[test]
    fn wire_bytes_is_payload_plus_kappa() {
        let (_, keys) = KeyRegistry::trusted_setup(1, 1);
        let s = Signed::sign(msg(7), &keys[0]);
        assert_eq!(s.wire_bytes(), 1 + KAPPA);
    }
}
