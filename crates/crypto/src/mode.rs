//! The verification-strategy knob: reference re-verification vs the
//! memoized fast path.
//!
//! Signature verification is a pure function of (registry, digest,
//! signature), so a replica may cache verdicts per content without
//! changing any observable behavior — the accountable Reveal phase
//! re-checks each distinct certificate ~quorum times, and memoization
//! collapses that to once. [`VerifyMode`] selects between the original
//! verify-on-every-arrival path (kept bit-for-bit as the reference) and
//! the memoized path, mirroring how `prft_sim::QueueBackend` keeps the
//! heap queue beside the calendar queue.
//!
//! The choice never affects results: logical verify counts, reports, and
//! chains are pinned byte-identical across modes by the differential
//! suite in `crates/core/tests/fastpath_equiv.rs`, which is why the knob
//! is excluded from scenario fingerprints.

/// How a replica verifies ballots and commit certificates.
///
/// The choice never affects results — the fast path is pinned
/// byte-identical to the reference — only speed, so it is excluded from
/// spec fingerprints and defaults to the fast path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VerifyMode {
    /// Re-verify every signature on every arrival (what the seed replica
    /// did, bit for bit). The slow but obviously-correct baseline the
    /// differential suite compares against.
    Reference,
    /// Memoize ballot and certificate verdicts per replica, share
    /// certificate bodies, and dedupe-verify Reveal batches (the default).
    #[default]
    Fast,
}

impl VerifyMode {
    /// Every mode, in a stable order (differential sweeps iterate this).
    pub const ALL: [VerifyMode; 2] = [VerifyMode::Reference, VerifyMode::Fast];

    /// The CLI/report name of the mode.
    pub fn name(self) -> &'static str {
        match self {
            VerifyMode::Reference => "reference",
            VerifyMode::Fast => "fast",
        }
    }

    /// Parses a CLI/report name (`"reference"` / `"fast"`).
    pub fn parse(s: &str) -> Option<VerifyMode> {
        match s {
            "reference" => Some(VerifyMode::Reference),
            "fast" => Some(VerifyMode::Fast),
            _ => None,
        }
    }
}

impl std::fmt::Display for VerifyMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::VerifyMode;

    #[test]
    fn names_round_trip() {
        for mode in VerifyMode::ALL {
            assert_eq!(VerifyMode::parse(mode.name()), Some(mode));
            assert_eq!(format!("{mode}"), mode.name());
        }
        assert_eq!(VerifyMode::parse("bogus"), None);
    }

    #[test]
    fn fast_is_the_default() {
        assert_eq!(VerifyMode::default(), VerifyMode::Fast);
    }
}
