//! Simulated PKI substrate for the pRFT reproduction.
//!
//! The paper assumes unforgeable digital signatures under a trusted
//! broadcast-type setup (Section 3.3). We reproduce that with:
//!
//! * a from-scratch [`Sha256`] implementation (validated against FIPS 180-4
//!   test vectors) producing [`prft_types::Digest`]s;
//! * keyed-MAC "signatures": a [`SecretKey`] derives a tag as
//!   `SHA-256(seed ‖ digest)`, and the [`KeyRegistry`] (the trusted setup)
//!   verifies it. Within the simulation, unforgeability holds *by API
//!   construction*: only the holder of a `SecretKey` can produce a valid
//!   [`Signature`] for its identity, exactly as forgery is negligible for
//!   PPTM adversaries in the paper.
//! * generic [`Signed`] payloads with domain separation and per-slot
//!   (round, phase) binding, and [`ConflictEvidence`] — the double-signature
//!   evidence from which Proof-of-Fraud is assembled (paper, Section 5.3.1).
//!
//! # Example
//!
//! ```
//! use prft_crypto::{KeyRegistry, Signable, Signed, Slot};
//! use prft_types::{Encoder, NodeId};
//!
//! #[derive(Clone, PartialEq, Eq, Debug)]
//! struct Ballot { round: u64, choice: u8 }
//! impl Signable for Ballot {
//!     fn domain(&self) -> &'static str { "Ballot" }
//!     fn slot(&self) -> Slot { Slot { round: self.round, phase: 0 } }
//!     fn signable_bytes(&self) -> Vec<u8> {
//!         let mut e = Encoder::new();
//!         e.u64(self.round).u8(self.choice);
//!         e.into_bytes()
//!     }
//! }
//!
//! let (registry, mut keys) = KeyRegistry::trusted_setup(4, 42);
//! let key = keys.remove(0);
//! let signed = Signed::sign(Ballot { round: 1, choice: 7 }, &key);
//! assert!(signed.verify(&registry));
//! assert_eq!(signed.signer(), NodeId(0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod evidence;
mod keys;
mod mode;
mod sha256;
mod signed;

pub use evidence::{pof_wire_bytes, verify_pof, ConflictEvidence};
pub use keys::{KeyRegistry, SecretKey, Signature, KAPPA};
pub use mode::VerifyMode;
pub use sha256::Sha256;
pub use signed::{Signable, Signed, Slot};
