//! Keys, signatures, and the trusted-setup registry.

use crate::Sha256;
use prft_types::{Digest, NodeId};
use std::fmt;

/// Security parameter κ in bytes: the wire size of one signature.
///
/// The paper reports message sizes as `O(κ · n^4)`; all byte accounting in
/// `prft-metrics` is parameterized by this constant.
pub const KAPPA: usize = 32;

/// A player's signing key.
///
/// Produced only by [`KeyRegistry::trusted_setup`]. There is deliberately no
/// way to construct a `SecretKey` for an arbitrary identity, and the seed is
/// private: within the simulation this *is* unforgeability.
#[derive(Clone)]
pub struct SecretKey {
    signer: NodeId,
    seed: [u8; 32],
}

impl SecretKey {
    /// The identity this key signs for.
    pub fn signer(&self) -> NodeId {
        self.signer
    }

    /// Signs a digest, producing a signature bound to this identity.
    pub fn sign(&self, digest: Digest) -> Signature {
        Signature {
            signer: self.signer,
            tag: Sha256::digest_parts(&[&self.seed, &digest.0]),
        }
    }
}

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print the seed.
        write!(f, "SecretKey({})", self.signer)
    }
}

/// A signature: the claimed signer plus a keyed-MAC tag over the digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature {
    signer: NodeId,
    tag: Digest,
}

impl Signature {
    /// The identity that (claims to have) produced this signature.
    pub fn signer(&self) -> NodeId {
        self.signer
    }

    /// The keyed-MAC tag. Exposed so verification memo caches can key on
    /// the *full* signature content (signer + tag + signed slot), which is
    /// what makes a cached verdict collision-free: two ballots that differ
    /// anywhere have different keys, so a tampered twin can never reuse a
    /// valid ballot's cached `true`.
    pub fn tag(&self) -> Digest {
        self.tag
    }

    /// Wire size of a signature in bytes (κ).
    pub const fn wire_bytes() -> usize {
        KAPPA
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sig({}, {})", self.signer, self.tag)
    }
}

/// The trusted setup: all public verification material.
///
/// The paper assumes a trusted broadcast-type setup where players share
/// public keys (Section 3.3). Here the registry holds the per-player seeds
/// and acts as the verification oracle; protocol code only ever calls
/// [`KeyRegistry::verify`].
#[derive(Debug, Clone)]
pub struct KeyRegistry {
    seeds: Vec<[u8; 32]>,
}

impl KeyRegistry {
    /// Runs the trusted setup for `n` players from a master seed, returning
    /// the public registry and each player's secret key.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn trusted_setup(n: usize, master_seed: u64) -> (KeyRegistry, Vec<SecretKey>) {
        assert!(n > 0, "committee must be non-empty");
        let mut seeds = Vec::with_capacity(n);
        let mut keys = Vec::with_capacity(n);
        for i in 0..n {
            let seed = Sha256::digest_parts(&[
                b"prft-trusted-setup",
                &master_seed.to_le_bytes(),
                &(i as u64).to_le_bytes(),
            ])
            .0;
            seeds.push(seed);
            keys.push(SecretKey {
                signer: NodeId(i),
                seed,
            });
        }
        (KeyRegistry { seeds }, keys)
    }

    /// Number of registered players.
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// Whether the registry is empty (never true after setup).
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }

    /// Verifies that `sig` is a valid signature by its claimed signer over
    /// `digest`. Returns `false` for unknown signers or bad tags.
    ///
    /// Every call counts once toward the `crypto.sig_verifies` counter and
    /// the `verify_sig` profiling scope — this is the chokepoint the
    /// accountable path's `O(n³κ)` Reveal payloads hammer, so the ROADMAP
    /// large-n optimization is gated on exactly this number.
    pub fn verify(&self, digest: Digest, sig: &Signature) -> bool {
        prft_sim::obs::hooks::count_sig_verify();
        prft_sim::obs::timed("verify_sig", || match self.seeds.get(sig.signer.0) {
            Some(seed) => Sha256::digest_parts(&[seed, &digest.0]) == sig.tag,
            None => false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let (reg, keys) = KeyRegistry::trusted_setup(3, 7);
        let d = Sha256::digest(b"message");
        for key in &keys {
            let sig = key.sign(d);
            assert!(reg.verify(d, &sig));
            assert_eq!(sig.signer(), key.signer());
        }
    }

    #[test]
    fn wrong_digest_fails() {
        let (reg, keys) = KeyRegistry::trusted_setup(2, 7);
        let sig = keys[0].sign(Sha256::digest(b"a"));
        assert!(!reg.verify(Sha256::digest(b"b"), &sig));
    }

    #[test]
    fn cross_signer_tags_differ() {
        let (_, keys) = KeyRegistry::trusted_setup(2, 7);
        let d = Sha256::digest(b"m");
        assert_ne!(keys[0].sign(d), keys[1].sign(d));
    }

    #[test]
    fn unknown_signer_rejected() {
        let (reg, _) = KeyRegistry::trusted_setup(2, 7);
        // Key from a *different* setup claims identity 0.
        let (_, other) = KeyRegistry::trusted_setup(2, 8);
        let d = Sha256::digest(b"m");
        assert!(!reg.verify(d, &other[0].sign(d)), "foreign setup rejected");
        let (_, big) = KeyRegistry::trusted_setup(5, 7);
        assert!(!reg.verify(d, &big[4].sign(d)), "out-of-range signer");
    }

    #[test]
    fn setups_are_deterministic_per_seed() {
        let (reg_a, keys_a) = KeyRegistry::trusted_setup(2, 7);
        let (_, keys_b) = KeyRegistry::trusted_setup(2, 7);
        let d = Sha256::digest(b"m");
        assert_eq!(keys_a[0].sign(d), keys_b[0].sign(d));
        assert!(reg_a.verify(d, &keys_b[0].sign(d)));
    }

    #[test]
    fn debug_never_leaks_seed() {
        let (_, keys) = KeyRegistry::trusted_setup(1, 7);
        let printed = format!("{:?}", keys[0]);
        assert_eq!(printed, "SecretKey(P0)");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_setup_panics() {
        let _ = KeyRegistry::trusted_setup(0, 1);
    }

    #[test]
    fn verify_counts_into_the_obs_hook() {
        prft_sim::obs::hooks::reset();
        let (reg, keys) = KeyRegistry::trusted_setup(2, 7);
        let d = Sha256::digest(b"m");
        let sig = keys[0].sign(d);
        assert!(reg.verify(d, &sig));
        assert!(!reg.verify(Sha256::digest(b"other"), &sig));
        // Both the success and the failure count as one verification each.
        assert_eq!(prft_sim::obs::hooks::snapshot().sig_verifies, 2);
    }
}
