//! Double-signature evidence: the atom of Proof-of-Fraud.
//!
//! The paper's PoF (Section 5.3.1, Definition 6) is a set of ≥ `t0 + 1`
//! conflicting-signature pairs; a verification algorithm `V(π)` outputs the
//! guilty players. [`ConflictEvidence`] is one such pair, self-verifying
//! against the [`KeyRegistry`]: the penalty mechanism must never punish an
//! honest player (footnote 9), so verification is strict.

use crate::{KeyRegistry, Signable, Signed, KAPPA};
use prft_types::NodeId;

/// Two signed payloads by the same signer, in the same slot, with different
/// content: irrefutable evidence of `π_ds` (double-signing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictEvidence<T> {
    /// First signed payload.
    pub first: Signed<T>,
    /// Second, conflicting, signed payload.
    pub second: Signed<T>,
}

impl<T: Signable + PartialEq> ConflictEvidence<T> {
    /// Assembles evidence from two signed payloads if they actually conflict
    /// (same signer, same slot, different payload). Returns `None` otherwise.
    pub fn try_new(a: Signed<T>, b: Signed<T>) -> Option<ConflictEvidence<T>> {
        if a.signer() == b.signer() && a.slot() == b.slot() && a.payload != b.payload {
            Some(ConflictEvidence {
                first: a,
                second: b,
            })
        } else {
            None
        }
    }

    /// The accused player.
    pub fn accused(&self) -> NodeId {
        self.first.signer()
    }

    /// The verification algorithm `V(π)` for a single pair: checks both
    /// signatures, signer identity, slot equality, and payload conflict.
    /// Returns the guilty player on success.
    ///
    /// Honest players can never be convicted: producing two *valid*
    /// signatures for one identity requires that identity's secret key.
    pub fn verify(&self, registry: &KeyRegistry) -> Option<NodeId> {
        let same_signer = self.first.signer() == self.second.signer();
        let same_slot = self.first.slot() == self.second.slot();
        let conflicting = self.first.payload != self.second.payload;
        if same_signer
            && same_slot
            && conflicting
            && self.first.verify(registry)
            && self.second.verify(registry)
        {
            Some(self.first.signer())
        } else {
            None
        }
    }

    /// Wire size: two signed payloads.
    pub fn wire_bytes(&self) -> usize {
        self.first.wire_bytes() + self.second.wire_bytes()
    }
}

/// Verifies a full Proof-of-Fraud: a set of evidence pairs must convict at
/// least `t0 + 1` *distinct* players to justify an `Expose` (paper, Reveal
/// phase: `|D_i| > t0`). Returns the convicted set if the bar is met.
pub fn verify_pof<T: Signable + PartialEq>(
    evidence: &[ConflictEvidence<T>],
    registry: &KeyRegistry,
    t0: usize,
) -> Option<Vec<NodeId>> {
    let mut guilty: Vec<NodeId> = evidence.iter().filter_map(|e| e.verify(registry)).collect();
    guilty.sort_unstable();
    guilty.dedup();
    if guilty.len() > t0 {
        Some(guilty)
    } else {
        None
    }
}

/// Wire size of a PoF set.
pub fn pof_wire_bytes<T: Signable + PartialEq>(evidence: &[ConflictEvidence<T>]) -> usize {
    evidence
        .iter()
        .map(ConflictEvidence::wire_bytes)
        .sum::<usize>()
        .max(KAPPA)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Slot;
    use prft_types::Encoder;

    #[derive(Clone, PartialEq, Eq, Debug)]
    struct Ballot {
        round: u64,
        value: u64,
    }

    impl Signable for Ballot {
        fn domain(&self) -> &'static str {
            "Ballot"
        }
        fn slot(&self) -> Slot {
            Slot {
                round: self.round,
                phase: 2,
            }
        }
        fn signable_bytes(&self) -> Vec<u8> {
            let mut e = Encoder::new();
            e.u64(self.value);
            e.into_bytes()
        }
    }

    #[test]
    fn conflicting_pair_convicts() {
        let (reg, keys) = KeyRegistry::trusted_setup(3, 9);
        let a = Signed::sign(Ballot { round: 1, value: 1 }, &keys[2]);
        let b = Signed::sign(Ballot { round: 1, value: 2 }, &keys[2]);
        let ev = ConflictEvidence::try_new(a, b).expect("conflict");
        assert_eq!(ev.verify(&reg), Some(NodeId(2)));
        assert_eq!(ev.accused(), NodeId(2));
    }

    #[test]
    fn same_payload_is_not_conflict() {
        let (_, keys) = KeyRegistry::trusted_setup(1, 9);
        let a = Signed::sign(Ballot { round: 1, value: 1 }, &keys[0]);
        let b = Signed::sign(Ballot { round: 1, value: 1 }, &keys[0]);
        assert!(ConflictEvidence::try_new(a, b).is_none());
    }

    #[test]
    fn different_rounds_are_not_conflict() {
        let (_, keys) = KeyRegistry::trusted_setup(1, 9);
        let a = Signed::sign(Ballot { round: 1, value: 1 }, &keys[0]);
        let b = Signed::sign(Ballot { round: 2, value: 2 }, &keys[0]);
        assert!(
            ConflictEvidence::try_new(a, b).is_none(),
            "votes in different rounds never conflict (no replay framing)"
        );
    }

    #[test]
    fn different_signers_are_not_conflict() {
        let (_, keys) = KeyRegistry::trusted_setup(2, 9);
        let a = Signed::sign(Ballot { round: 1, value: 1 }, &keys[0]);
        let b = Signed::sign(Ballot { round: 1, value: 2 }, &keys[1]);
        assert!(ConflictEvidence::try_new(a, b).is_none());
    }

    #[test]
    fn forged_evidence_rejected_by_verify() {
        // An adversary pairs an honest signature with a *tampered* copy.
        let (reg, keys) = KeyRegistry::trusted_setup(1, 9);
        let honest = Signed::sign(Ballot { round: 1, value: 1 }, &keys[0]);
        let mut tampered = honest.clone();
        tampered.payload.value = 2; // signature no longer matches
        let ev = ConflictEvidence {
            first: honest,
            second: tampered,
        };
        assert_eq!(
            ev.verify(&reg),
            None,
            "honest players cannot be framed without their key"
        );
    }

    #[test]
    fn pof_requires_t0_plus_one_distinct() {
        let (reg, keys) = KeyRegistry::trusted_setup(4, 9);
        let pair = |i: usize, r: u64| {
            ConflictEvidence::try_new(
                Signed::sign(Ballot { round: r, value: 1 }, &keys[i]),
                Signed::sign(Ballot { round: r, value: 2 }, &keys[i]),
            )
            .unwrap()
        };
        let t0 = 1;
        // One guilty player: below the bar.
        assert!(verify_pof(&[pair(0, 1)], &reg, t0).is_none());
        // Same player twice: still one distinct conviction.
        assert!(verify_pof(&[pair(0, 1), pair(0, 2)], &reg, t0).is_none());
        // Two distinct players: conviction.
        let out = verify_pof(&[pair(0, 1), pair(3, 1)], &reg, t0).unwrap();
        assert_eq!(out, vec![NodeId(0), NodeId(3)]);
    }

    #[test]
    fn pof_ignores_invalid_pairs() {
        let (reg, keys) = KeyRegistry::trusted_setup(3, 9);
        let good = ConflictEvidence::try_new(
            Signed::sign(Ballot { round: 1, value: 1 }, &keys[0]),
            Signed::sign(Ballot { round: 1, value: 2 }, &keys[0]),
        )
        .unwrap();
        let mut bad = good.clone();
        bad.second.payload.value = 3; // invalidates the signature
        assert!(verify_pof(&[good, bad], &reg, 1).is_none());
    }
}
