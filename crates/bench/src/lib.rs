//! Shared helpers for the experiment binaries (one binary per paper
//! table/figure; see `docs/REPRODUCING.md` for the claim-by-claim index).
//!
//! Run orchestration lives in `prft-lab` — scenario specs, the parallel
//! batch runner, aggregation, and report emission; the binaries here are
//! thin scenario definitions plus table formatters. This crate keeps only
//! the sim-level conveniences the binaries and downstream tests share,
//! delegating measurement to the one engine.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use prft_core::analysis::{analyze, RunReport};
use prft_core::Replica;
use prft_game::{SystemState, Theta, UtilityParams};
use prft_lab::UtilitySpec;
use prft_sim::{SimTime, Simulation};
use prft_types::{NodeId, TxId};

/// Default horizon for attack experiments (virtual ticks).
pub const HORIZON: SimTime = SimTime(2_000_000);

/// Runs a built pRFT simulation to its horizon and reports.
pub fn run_and_report(sim: &mut Simulation<Replica>) -> RunReport {
    sim.run_until(HORIZON);
    analyze(sim)
}

/// Classifies the σ state of a finished pRFT run, watching `watched` for
/// censorship. Delegates to the `prft-lab` engine.
pub fn classify_run(sim: &Simulation<Replica>, watched: &[TxId]) -> SystemState {
    prft_lab::classify_watched(sim, watched)
}

/// Measures player `i`'s discounted utility over a finished run:
/// `Σ_{r<R} δ^r · f(σ, θ) − L·[i burned]`. Delegates to the `prft-lab`
/// engine's utility measurement.
pub fn measure_utility(
    sim: &Simulation<Replica>,
    player: NodeId,
    theta: Theta,
    params: &UtilityParams,
    watched: &[TxId],
    rounds: u64,
) -> f64 {
    let state = classify_run(sim, watched);
    let spec = UtilitySpec {
        theta,
        alpha: params.alpha,
        delta: params.delta,
        penalty_l: params.penalty_l,
        rounds,
    };
    prft_lab::discounted_utility(sim, state, player, &spec)
}

/// Formats a float compactly for tables.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 || v.abs() < 0.01 {
        format!("{v:.2e}")
    } else {
        format!("{v:.2}")
    }
}

/// Formats a boolean verdict.
pub fn verdict(ok: bool) -> String {
    if ok {
        "✓".to_string()
    } else {
        "✗".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prft_core::{Harness, NetworkChoice};

    #[test]
    fn honest_run_classifies_sigma_0_and_zero_utility() {
        let mut sim = Harness::new(5, 1)
            .network(NetworkChoice::Synchronous { delta: SimTime(10) })
            .max_rounds(3)
            .build();
        let report = run_and_report(&mut sim);
        assert!(report.agreement);
        assert_eq!(classify_run(&sim, &[]), SystemState::HonestExecution);
        let u = measure_utility(
            &sim,
            NodeId(0),
            Theta::ForkSeeking,
            &UtilityParams::default(),
            &[],
            3,
        );
        assert_eq!(u, 0.0, "θ=1 earns nothing from honest execution");
    }

    #[test]
    fn fmt_is_compact() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(1.5), "1.50");
        assert_eq!(fmt(123456.0), "1.23e5");
        assert_eq!(verdict(true), "✓");
    }
}
