//! Shared runners and utility-measurement helpers for the experiment
//! binaries (one binary per paper table/figure; see DESIGN.md §5 and
//! EXPERIMENTS.md for the index).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use prft_core::analysis::{analyze, honest_ids, RunReport};
use prft_core::Replica;
use prft_game::{PayoffTable, SystemState, Theta, UtilityParams};
use prft_metrics::{classify, StateObservation};
use prft_sim::{SimTime, Simulation};
use prft_types::{NodeId, TxId};

/// Default horizon for attack experiments (virtual ticks).
pub const HORIZON: SimTime = SimTime(2_000_000);

/// Runs a built pRFT simulation to its horizon and reports.
pub fn run_and_report(sim: &mut Simulation<Replica>) -> RunReport {
    sim.run_until(HORIZON);
    analyze(sim)
}

/// Classifies the σ state of a finished pRFT run, watching `watched` for
/// censorship.
pub fn classify_run(sim: &Simulation<Replica>, watched: &[TxId]) -> SystemState {
    let honest = honest_ids(sim);
    let chains = honest.iter().map(|&id| sim.node(id).chain()).collect();
    classify(&StateObservation {
        chains,
        watched: watched.to_vec(),
        baseline_height: 0,
    })
}

/// Measures player `i`'s discounted utility over a finished run:
/// `Σ_{r<R} δ^r · f(σ, θ) − L·[i burned]`, where σ is the realized system
/// state of the run, `R` the experiment's round budget (the utility stream
/// runs over *time periods*, not protocol progress — a jammed system keeps
/// paying the σ_NP penalty), and the penalty applies iff any honest
/// player's ledger burned `i`.
pub fn measure_utility(
    sim: &Simulation<Replica>,
    player: NodeId,
    theta: Theta,
    params: &UtilityParams,
    watched: &[TxId],
    rounds: u64,
) -> f64 {
    let state = classify_run(sim, watched);
    let table = PayoffTable::new(params.alpha);
    let honest = honest_ids(sim);
    let per_round = table.f(state, theta);
    let mut total = 0.0;
    let mut weight = 1.0;
    for _ in 0..rounds {
        total += weight * per_round;
        weight *= params.delta;
    }
    let burned = honest
        .iter()
        .any(|&id| sim.node(id).collateral().is_burned(player));
    let _ = &honest;
    if burned {
        total -= params.penalty_l;
    }
    total
}

/// Formats a float compactly for tables.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 || v.abs() < 0.01 {
        format!("{v:.2e}")
    } else {
        format!("{v:.2}")
    }
}

/// Formats a boolean verdict.
pub fn verdict(ok: bool) -> String {
    if ok { "✓".to_string() } else { "✗".to_string() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prft_core::{Harness, NetworkChoice};

    #[test]
    fn honest_run_classifies_sigma_0_and_zero_utility() {
        let mut sim = Harness::new(5, 1)
            .network(NetworkChoice::Synchronous { delta: SimTime(10) })
            .max_rounds(3)
            .build();
        let report = run_and_report(&mut sim);
        assert!(report.agreement);
        assert_eq!(classify_run(&sim, &[]), SystemState::HonestExecution);
        let u = measure_utility(
            &sim,
            NodeId(0),
            Theta::ForkSeeking,
            &UtilityParams::default(),
            &[],
            3,
        );
        assert_eq!(u, 0.0, "θ=1 earns nothing from honest execution");
    }

    #[test]
    fn fmt_is_compact() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(1.5), "1.50");
        assert_eq!(fmt(123456.0), "1.23e5");
        assert_eq!(verdict(true), "✓");
    }
}
