//! **E8 — Figure 2a/2b**: the normal execution of one pRFT round (message
//! timeline per phase, as in the paper's ladder diagram) and the message
//! inventory with wire sizes.
//!
//! A single traced run built through the `prft-lab` spec path (the
//! engine's single-run escape hatch: specs build simulations, the bin
//! keeps the trace inspection).
//!
//! Run: `cargo run -p prft-bench --release --bin fig2_trace`

use prft_lab::ScenarioSpec;
use prft_metrics::AsciiTable;
use prft_sim::SimTime;
use prft_types::NodeId;

fn main() {
    println!("E8 — Figure 2a: normal execution of pRFT (n = 4, one round)\n");
    let n = 4;
    let spec = ScenarioSpec::new("fig2", n, 1)
        .base_seed(7)
        .horizon(100_000);
    let mut sim = prft_lab::build_sim(&spec, spec.base_seed);
    sim.set_tracing(true);
    sim.run_until(SimTime(spec.horizon));

    // Phase timeline: first/last delivery per message kind.
    let phases = ["Propose", "Vote", "Commit", "Reveal", "Final"];
    let mut timeline = AsciiTable::new(vec![
        "phase",
        "deliveries",
        "first at",
        "last at",
        "pattern",
    ])
    .with_title("Phase timeline (times in simulation ticks, Δ = 10)");
    for kind in phases {
        let entries: Vec<_> = sim.trace().of_kind(kind).collect();
        let first = entries.iter().map(|e| e.at).min();
        let last = entries.iter().map(|e| e.at).max();
        let pattern = match kind {
            "Propose" => "leader → all",
            _ => "all → all",
        };
        timeline.row(vec![
            kind.into(),
            entries.len().to_string(),
            first.map_or("-".into(), |t| t.to_string()),
            last.map_or("-".into(), |t| t.to_string()),
            pattern.into(),
        ]);
    }
    println!("{timeline}\n");

    // The ladder: per-replica arrival of each phase's first message.
    println!("Ladder (first delivery of each phase at each replica):");
    let mut ladder = AsciiTable::new(vec![
        "replica", "Propose", "Vote", "Commit", "Reveal", "Final",
    ]);
    for i in 0..n {
        let mut row = vec![format!("P{i}")];
        for kind in phases {
            let at = sim
                .trace()
                .of_kind(kind)
                .filter(|e| e.to == NodeId(i))
                .map(|e| e.at)
                .min();
            row.push(at.map_or("-".into(), |t| t.to_string()));
        }
        ladder.row(row);
    }
    println!("{ladder}\n");

    // Figure 2b: message inventory with measured wire sizes.
    println!("Figure 2b: pRFT message inventory (measured mean wire bytes)\n");
    let mut inventory = AsciiTable::new(vec!["message", "paper form", "count", "mean bytes"]);
    let forms = [
        ("Propose", "(⟨Propose, B_l, h_l, r⟩, s_pro)"),
        ("Vote", "(⟨Vote, h_i, s_pro, r⟩, s_vote)"),
        ("Commit", "(⟨Commit, h*, s_pro, V_i, r⟩, s_com)"),
        ("Reveal", "(⟨Reveal, h_tc, h_l, W_i, r⟩, s_rev)"),
        ("Expose", "(⟨Expose, D_i, r⟩, s_exp)"),
        ("Final", "(⟨Final, h_l, s_pro⟩, s_fin)"),
        ("ViewChange", "(⟨ViewChange, Phase, r⟩, s_vc)"),
        ("CommitView", "(⟨CommitView, V_i, r⟩, s_cv)"),
    ];
    for (kind, form) in forms {
        let stats = sim.meter().kind(kind);
        let mean =
            (stats.bytes.checked_div(stats.count)).map_or_else(|| "-".into(), |b| b.to_string());
        inventory.row(vec![
            kind.into(),
            form.into(),
            stats.count.to_string(),
            mean,
        ]);
    }
    println!("{inventory}\n");
    println!(
        "The round proceeds exactly as the paper's ladder: one leader\n\
         broadcast, then three all-to-all waves (Vote → Commit → Reveal),\n\
         then Finals; Expose and the view-change messages never appear in a\n\
         normal execution. Certificate nesting is visible in the sizes:\n\
         Commit carries n−t0 votes, Reveal carries n−t0 such commits."
    );
}
