//! **E8 — Figure 2a/2b**: the normal execution of one pRFT round (phase
//! ladder per replica, as in the paper's diagram) and the message
//! inventory with wire sizes.
//!
//! A single traced run built through the `prft-lab` spec path, rendered
//! from the observability layer: the phase ladder comes from the
//! replicas' recorded phase spans (the same spans `prft-lab run
//! --trace-out` exports as Chrome Trace JSON), and the message inventory
//! is cross-checked against the counter registry — the engine-side Meter
//! and the replica-side `recv.P*` counters must agree on every kind's
//! message and byte totals in a quiescent run, or the binary exits
//! non-zero.
//!
//! Run: `cargo run -p prft-bench --release --bin fig2_trace`

use prft_lab::ScenarioSpec;
use prft_metrics::AsciiTable;
use prft_types::NodeId;
use std::process::ExitCode;

fn main() -> ExitCode {
    println!("E8 — Figure 2a: normal execution of pRFT (n = 4, one round)\n");
    let n = 4;
    let spec = ScenarioSpec::new("fig2", n, 1)
        .base_seed(7)
        .horizon(100_000);
    prft_sim::obs::hooks::reset();
    let (sim, _outcome) = prft_lab::run_sim(&spec, spec.base_seed, |sim| sim.set_tracing(true));
    let obs = prft_core::obs::collect(&sim, &prft_sim::obs::hooks::snapshot());

    // Phase timeline: entry/exit of each phase across the committee,
    // straight from the recorded per-replica phase spans.
    let phases = ["Propose", "Vote", "Commit", "Reveal", "Final"];
    let mut timeline = AsciiTable::new(vec!["phase", "replicas", "first entry", "last entry"])
        .with_title("Phase timeline (times in simulation ticks, Δ = 10)");
    for label in phases {
        let entries: Vec<u64> = (0..n)
            .flat_map(|i| {
                sim.node(NodeId(i))
                    .stats()
                    .phase_transitions
                    .iter()
                    .filter(|(_, phase, _)| phase.label() == label)
                    .map(|(_, _, at)| at.0)
                    .collect::<Vec<_>>()
            })
            .collect();
        let first = entries.iter().min();
        let last = entries.iter().max();
        timeline.row(vec![
            label.into(),
            entries.len().to_string(),
            first.map_or("-".into(), |t| t.to_string()),
            last.map_or("-".into(), |t| t.to_string()),
        ]);
    }
    println!("{timeline}\n");

    // The ladder: when each replica entered each phase (one span per
    // phase in a crash-free single round).
    println!("Ladder (phase entry at each replica, from the recorded spans):");
    let mut ladder = AsciiTable::new(vec![
        "replica", "Propose", "Vote", "Commit", "Reveal", "Final",
    ]);
    for i in 0..n {
        let mut row = vec![format!("P{i}")];
        let transitions = &sim.node(NodeId(i)).stats().phase_transitions;
        for label in phases {
            let at = transitions
                .iter()
                .filter(|(_, phase, _)| phase.label() == label)
                .map(|(_, _, at)| at.0)
                .min();
            row.push(at.map_or("-".into(), |t| t.to_string()));
        }
        ladder.row(row);
    }
    println!("{ladder}\n");

    // Figure 2b: message inventory with measured wire sizes.
    println!("Figure 2b: pRFT message inventory (measured mean wire bytes)\n");
    let mut inventory = AsciiTable::new(vec!["message", "paper form", "count", "mean bytes"]);
    let forms = [
        ("Propose", "(⟨Propose, B_l, h_l, r⟩, s_pro)"),
        ("Vote", "(⟨Vote, h_i, s_pro, r⟩, s_vote)"),
        ("Commit", "(⟨Commit, h*, s_pro, V_i, r⟩, s_com)"),
        ("Reveal", "(⟨Reveal, h_tc, h_l, W_i, r⟩, s_rev)"),
        ("Expose", "(⟨Expose, D_i, r⟩, s_exp)"),
        ("Final", "(⟨Final, h_l, s_pro⟩, s_fin)"),
        ("ViewChange", "(⟨ViewChange, Phase, r⟩, s_vc)"),
        ("CommitView", "(⟨CommitView, V_i, r⟩, s_cv)"),
    ];
    for (kind, form) in forms {
        let stats = sim.meter().kind(kind);
        let mean =
            (stats.bytes.checked_div(stats.count)).map_or_else(|| "-".into(), |b| b.to_string());
        inventory.row(vec![
            kind.into(),
            form.into(),
            stats.count.to_string(),
            mean,
        ]);
    }
    println!("{inventory}\n");

    // Cross-check: the engine-side Meter (what was sent) against the
    // replica-side registry (what was received and counted in
    // `on_message`). A quiescent run delivers every send, so any drift
    // between the two accounting paths is a bug in one of them.
    println!("Meter ↔ registry cross-check (sent vs received per kind):");
    let mut ok = true;
    for (kind, _) in forms {
        let sent = sim.meter().kind(kind);
        if sent.count == 0 {
            continue;
        }
        let recv_msgs: u64 = (0..n)
            .map(|i| obs.counter(&format!("recv.P{i}.{kind}.msgs")))
            .sum();
        let recv_bytes: u64 = (0..n)
            .map(|i| obs.counter(&format!("recv.P{i}.{kind}.bytes")))
            .sum();
        let matches = sent.count == recv_msgs && sent.bytes == recv_bytes;
        ok &= matches;
        println!(
            "  {} {kind}: sent {} msgs / {} bytes, received {recv_msgs} msgs / {recv_bytes} bytes",
            if matches { "✓" } else { "✗" },
            sent.count,
            sent.bytes,
        );
    }
    println!();
    if !ok {
        eprintln!("error: Meter and counter registry disagree — accounting bug");
        return ExitCode::FAILURE;
    }
    println!(
        "The round proceeds exactly as the paper's ladder: one leader\n\
         broadcast, then three all-to-all waves (Vote → Commit → Reveal),\n\
         then Finals; Expose and the view-change messages never appear in a\n\
         normal execution. Certificate nesting is visible in the sizes:\n\
         Commit carries n−t0 votes, Reveal carries n−t0 such commits."
    );
    ExitCode::SUCCESS
}
