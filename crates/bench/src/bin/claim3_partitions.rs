//! **E12 — Claim 3**: with a non-deviating majority, any partition of
//! `P ∖ T` yields *either* agreement in exactly one partition *or* a
//! timeout — never two disjoint quorums (since `k + t + 2·t0 < n`).
//!
//! We sweep random partitions of the honest players (with the byzantine
//! set bridging, per the paper's model): each seed becomes a `prft-lab`
//! scenario spec and the sweep fans across cores; the per-round outcome
//! inspection reads the built simulation directly (the engine's
//! single-run escape hatch).
//!
//! Run: `cargo run -p prft-bench --release --bin claim3_partitions`

use prft_bench::verdict;
use prft_core::analysis::{analyze, honest_ids};
use prft_lab::{BatchRunner, PartitionSpec, ScenarioSpec};
use prft_metrics::AsciiTable;
use prft_sim::{SimRng, SimTime};

struct Outcome {
    split: String,
    finalized: usize,
    timed_out: usize,
    double_agreement: bool,
    agreement: bool,
}

fn partition_spec(seed: u64, n: usize, t: usize) -> ScenarioSpec {
    // Random split of the honest players {t..n}; P0..P_{t-1} are the
    // byzantine bridges (they participate and talk to both sides).
    let mut rng = SimRng::new(seed * 77 + 5);
    let mut honest: Vec<usize> = (t..n).collect();
    rng.shuffle(&mut honest);
    let cut = 1 + rng.below((honest.len() - 1) as u64) as usize;
    let (a, b) = honest.split_at(cut);
    ScenarioSpec::new(format!("{}|{}", a.len(), b.len()), n, 3)
        .base_seed(seed)
        .partition(PartitionSpec {
            start: 0,
            end: 30_000,
            groups: vec![a.to_vec(), b.to_vec()],
            bridges: (0..t).collect(),
        })
        .horizon(25_000) // strictly inside the partition
}

fn run_probe(spec: &ScenarioSpec) -> Outcome {
    let mut sim = prft_lab::build_sim(spec, spec.base_seed);
    sim.run_until(SimTime(spec.horizon));

    let honest_ids = honest_ids(&sim);
    let mut finalized_rounds = std::collections::BTreeSet::new();
    let mut timed_out_rounds = std::collections::BTreeSet::new();
    let mut per_round_values: std::collections::HashMap<
        u64,
        std::collections::HashSet<prft_types::Digest>,
    > = std::collections::HashMap::new();
    for &id in &honest_ids {
        let node = sim.node(id);
        for (r, _) in &node.stats().finalize_times {
            finalized_rounds.insert(r.0);
        }
        for r in &node.stats().view_changed_rounds {
            timed_out_rounds.insert(r.0);
        }
        // Values finalized per height for double-agreement detection.
        for (h, entry) in node.chain().iter().enumerate() {
            if entry.status == prft_types::BlockStatus::Final && h > 0 {
                per_round_values
                    .entry(entry.block.round.0)
                    .or_default()
                    .insert(entry.block.id());
            }
        }
    }
    let double_agreement = per_round_values.values().any(|v| v.len() > 1);
    let report = analyze(&sim);
    Outcome {
        split: spec.label.clone(),
        finalized: finalized_rounds.len(),
        timed_out: timed_out_rounds.len(),
        double_agreement,
        agreement: report.agreement,
    }
}

fn main() {
    println!("E12 — Claim 3: partitions yield one agreement xor timeout\n");
    let n = 9; // t0 = 2, quorum 7
    let t = 2; // byzantine bridges: they talk to both sides (worst case)
    println!(
        "n = {n}, t0 = 2, t = {t}; byzantine bridge both sides; double quorum\n\
         feasible iff k+t+2·t0 ≥ n: {} — so at most one side can ever reach\n\
         the n−t0 = 7 quorum (side + t ≥ 7 needs a side of ≥ 5 of the 7 honest)\n",
        prft_game::analytic::double_quorum_feasible(n, 2, 0, t)
    );

    let specs: Vec<ScenarioSpec> = (0..12u64).map(|seed| partition_spec(seed, n, t)).collect();
    let outcomes = BatchRunner::all_cores().map(&specs, |_, spec| run_probe(spec));

    let mut table = AsciiTable::new(vec![
        "seed",
        "partition of P∖T",
        "rounds finalized",
        "rounds timed out",
        "double agreement",
        "agreement kept",
    ])
    .with_title("Random partitions, 3-round budget, partition heals at t = 30_000");

    let mut all_ok = true;
    for (seed, o) in outcomes.iter().enumerate() {
        let ok = !o.double_agreement && o.agreement;
        all_ok &= ok;
        let outcome = if o.finalized > 0 {
            "one-sided agreement"
        } else {
            "timeout/stall"
        };
        table.row(vec![
            seed.to_string(),
            o.split.clone(),
            format!("{} ({outcome})", o.finalized),
            o.timed_out.to_string(),
            verdict(o.double_agreement),
            verdict(o.agreement),
        ]);
    }
    println!("{table}\n");
    println!(
        "All partitions behave as Claim 3 requires: {} — a side with\n\
         ≥ n − t0 live players finalizes alone; otherwise the round times\n\
         out into a view change; no split ever produces two quorums, because\n\
         k + t + 2·t0 < n makes disjoint (n − t0)-quorums impossible.",
        verdict(all_ok)
    );
}
