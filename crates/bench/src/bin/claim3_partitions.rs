//! **E12 — Claim 3**: with a non-deviating majority, any partition of
//! `P ∖ T` yields *either* agreement in exactly one partition *or* a
//! timeout — never two disjoint quorums (since `k + t + 2·t0 < n`).
//!
//! We sweep random partitions of the honest players (with the byzantine
//! set bridging, per the paper's model) and check each round's outcome.
//!
//! Run: `cargo run -p prft-bench --release --bin claim3_partitions`

use prft_bench::verdict;
use prft_core::analysis::{analyze, honest_ids};
use prft_core::{Harness, NetworkChoice};
use prft_game::analytic;
use prft_metrics::AsciiTable;
use prft_net::{PartitionWindow, PartitionedNet, SynchronousNet};
use prft_sim::{SimRng, SimTime};
use prft_types::NodeId;

fn main() {
    println!("E12 — Claim 3: partitions yield one agreement xor timeout\n");
    let n = 9; // t0 = 2, quorum 7
    let t = 2; // byzantine bridges: they talk to both sides (worst case)
    println!(
        "n = {n}, t0 = 2, t = {t}; byzantine bridge both sides; double quorum\n\
         feasible iff k+t+2·t0 ≥ n: {} — so at most one side can ever reach\n\
         the n−t0 = 7 quorum (side + t ≥ 7 needs a side of ≥ 5 of the 7 honest)\n",
        analytic::double_quorum_feasible(n, 2, 0, t)
    );

    let mut table = AsciiTable::new(vec![
        "seed",
        "partition of P∖T",
        "rounds finalized",
        "rounds timed out",
        "double agreement",
        "agreement kept",
    ])
    .with_title("Random partitions, 3-round budget, partition heals at t = 30_000");

    let mut all_ok = true;
    for seed in 0..12u64 {
        // Random split of the honest players {2..8}; P0, P1 are the
        // byzantine bridges (they participate and talk to both sides).
        let mut rng = SimRng::new(seed * 77 + 5);
        let mut honest: Vec<NodeId> = (t..n).map(NodeId).collect();
        rng.shuffle(&mut honest);
        let cut = 1 + rng.below((honest.len() - 1) as u64) as usize;
        let (a, b) = honest.split_at(cut);

        let mut net = PartitionedNet::new(Box::new(SynchronousNet::new(SimTime(10))));
        net.add_window(PartitionWindow::split_with_bridges(
            SimTime::ZERO,
            SimTime(30_000),
            vec![a.to_vec(), b.to_vec()],
            (0..t).map(NodeId).collect(),
        ));

        // The byzantine players participate (protocol-compliantly, the
        // worst case for Claim 3: they help *both* sides toward a quorum).
        let mut sim = Harness::new(n, seed)
            .network(NetworkChoice::Custom(Box::new(net)))
            .max_rounds(3)
            .build();
        sim.run_until(SimTime(25_000)); // strictly inside the partition

        let honest_ids = honest_ids(&sim);
        // Per-round outcome: collect rounds finalized and rounds abandoned.
        let mut finalized_rounds = std::collections::BTreeSet::new();
        let mut timed_out_rounds = std::collections::BTreeSet::new();
        let mut per_round_values: std::collections::HashMap<u64, std::collections::HashSet<prft_types::Digest>> =
            std::collections::HashMap::new();
        for &id in &honest_ids {
            let node = sim.node(id);
            for (r, _) in &node.stats().finalize_times {
                finalized_rounds.insert(r.0);
            }
            for r in &node.stats().view_changed_rounds {
                timed_out_rounds.insert(r.0);
            }
            // Values finalized per height for double-agreement detection.
            for (h, entry) in node.chain().iter().enumerate() {
                if entry.status == prft_types::BlockStatus::Final && h > 0 {
                    per_round_values
                        .entry(entry.block.round.0)
                        .or_default()
                        .insert(entry.block.id());
                }
            }
        }
        let double_agreement = per_round_values.values().any(|v| v.len() > 1);
        let report = analyze(&sim);
        let ok = !double_agreement && report.agreement;
        all_ok &= ok;

        let outcome = if !finalized_rounds.is_empty() {
            "one-sided agreement"
        } else {
            "timeout/stall"
        };
        table.row(vec![
            seed.to_string(),
            format!("{}|{}", a.len(), b.len()),
            format!("{} ({outcome})", finalized_rounds.len()),
            timed_out_rounds.len().to_string(),
            verdict(double_agreement),
            verdict(report.agreement),
        ]);
    }
    println!("{table}\n");
    println!(
        "All partitions behave as Claim 3 requires: {} — a side with\n\
         ≥ n − t0 live players finalizes alone; otherwise the round times\n\
         out into a view change; no split ever produces two quorums, because\n\
         k + t + 2·t0 < n makes disjoint (n − t0)-quorums impossible.",
        verdict(all_ok)
    );
}
