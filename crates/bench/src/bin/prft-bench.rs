//! The `prft-bench` binary: engine micro-benchmarks with machine-readable
//! output, seeding the repo's recorded perf trajectory (`BENCH_*.json`).
//!
//! ```text
//! prft-bench queue [--quick] [--out FILE] [--repeats R]
//! prft-bench profile [--quick] [--out FILE]
//! prft-bench workload [--quick] [--out FILE]
//! ```
//!
//! `queue` sweeps committee sizes n ∈ {16, 64, 128, 256} × both event-queue
//! backends (heap reference, calendar) over a queue-bound flood workload
//! (every node broadcasts through a jittered link until a per-node round
//! budget drains; queue depth is ~n², which is exactly the pressure a
//! large-n pRFT committee puts on the engine) and reports events/sec, wall
//! time, and peak queue depth per point. `--quick` shrinks the sweep to
//! n ∈ {16, 128} with fewer events for CI smoke use.
//!
//! `profile` runs honest pRFT committees (accountable and non-accountable,
//! n ∈ {16, 64, 128, 256, 512}; `--quick` shrinks to n ∈ {8, 16, 128})
//! and reports where the work goes: logical signature verifies, actual
//! memo hits/misses (`verify.memo_hit` / `verify.memo_miss`), fan-out
//! clone bytes, events dispatched, wall time — plus per-scope wall-clock
//! timers when built with `--features profiling`. Three checks guard the
//! accountable points, each with a greppable PASS/FAIL line:
//! * the **logical** verify count must match the analytic per-round
//!   prediction within 10% (the O(n·q²) Reveal-phase term, the verify
//!   twin of Table 3's O(n³κ) bound) — this count is mode-invariant, so
//!   it also pins the fast path's counting discipline;
//! * the **actual** hash count (`verify.memo_miss`) must match the
//!   distinct-content model within 0.1% — with memoization each distinct
//!   signed content is hashed once per replica, collapsing O(n·q²) to
//!   O(n) per replica-round;
//! * `verify.memo_hit + verify.memo_miss == crypto.sig_verifies` exactly
//!   (every verification is either answered from cache or hashed).
//!
//! `--quick` additionally enforces a generous wall-clock budget on the
//! accountable n = 128 point, so CI fails if the fast path regresses.
//!
//! `workload` sweeps open-loop client populations n ∈ {100, 300, 1000,
//! 3000, 10000} against a fixed 8-replica committee (steady arrivals,
//! batched proposals) and reports engine throughput (events/sec) and
//! commit-latency percentiles (p50/p90/p99 in virtual ticks) per point.
//! `--quick` shrinks the sweep to n ∈ {100, 1000}. Two greppable checks:
//! every point must conserve transactions (submitted == committed +
//! dropped + pending) and the largest population must commit its entire
//! offered load (no drops, nothing left pending).
//!
//! The workload is deterministic (seeded link jitter), so both backends
//! dispatch the **same** events in the same order — the wall-clock delta
//! is pure queue cost. The binary exits non-zero if the calendar backend
//! fails to at least match the heap backend at the largest swept n, which
//! is what lets CI grep a PASS line instead of parsing JSON.
//!
//! Schema of the emitted JSON: see `docs/PERFORMANCE.md`.

use prft_lab::json::Json;
use prft_sim::{
    Context, LinkModel, Node, QueueBackend, SimRng, SimTime, Simulation, TimerId, WireMessage,
};
use prft_types::NodeId;
use std::process::ExitCode;
use std::time::Instant;

/// A 64-byte inline payload: big enough that moving messages through a
/// sifting heap is visible, small enough to stay allocation-free.
#[derive(Clone)]
struct FloodMsg([u64; 8]);

impl WireMessage for FloodMsg {
    fn kind(&self) -> &'static str {
        "Flood"
    }
    fn wire_bytes(&self) -> usize {
        64
    }
}

/// Jittered constant-delay link: `base + U[0, spread)` ticks, drawn from
/// the engine RNG, so deliveries spread across ticks (the calendar queue
/// sees many occupied buckets, not one burst bucket).
struct JitterLink {
    base: u64,
    spread: u64,
}

impl LinkModel for JitterLink {
    fn deliver_at(&mut self, _f: NodeId, _t: NodeId, sent: SimTime, rng: &mut SimRng) -> SimTime {
        SimTime(sent.0 + self.base + rng.below(self.spread))
    }
}

/// Flood node: broadcasts on start; every time it has heard `n` messages
/// it broadcasts again, until its round budget drains. Keeps ~n² events
/// in flight for the whole run.
struct FloodNode {
    n: usize,
    rounds_left: u64,
    heard: usize,
}

impl Node for FloodNode {
    type Msg = FloodMsg;

    fn on_start(&mut self, ctx: &mut Context<FloodMsg>) {
        ctx.broadcast(FloodMsg([ctx.me().0 as u64; 8]));
    }

    fn on_message(&mut self, ctx: &mut Context<FloodMsg>, _from: NodeId, msg: FloodMsg) {
        self.heard += 1;
        if self.heard >= self.n && self.rounds_left > 0 {
            self.heard = 0;
            self.rounds_left -= 1;
            ctx.broadcast(FloodMsg([msg.0[0].wrapping_add(1); 8]));
        }
    }

    fn on_timer(&mut self, _: &mut Context<FloodMsg>, _: TimerId) {}
}

/// One measured point of the sweep.
struct Point {
    n: usize,
    backend: QueueBackend,
    events: u64,
    wall_secs: f64,
    events_per_sec: f64,
    peak_depth: usize,
}

/// Runs the flood once and returns (events, wall seconds, peak depth).
/// The event count is a pure function of (n, rounds, seed) — identical
/// across backends, which the caller asserts.
fn run_flood(n: usize, rounds: u64, backend: QueueBackend, seed: u64) -> (u64, f64, usize) {
    let nodes = (0..n)
        .map(|_| FloodNode {
            n,
            rounds_left: rounds,
            heard: 0,
        })
        .collect();
    let link = Box::new(JitterLink {
        base: 8,
        spread: 48,
    });
    let mut sim = Simulation::with_backend(nodes, link, seed, backend);
    let t0 = Instant::now();
    sim.run();
    let wall = t0.elapsed().as_secs_f64();
    (sim.events_dispatched(), wall, sim.peak_queue_depth())
}

/// Measures one (n, backend) point: best-of-`repeats` wall time (the
/// event count and peak depth are deterministic; only wall time jitters).
fn measure(n: usize, rounds: u64, backend: QueueBackend, repeats: u32) -> Point {
    let mut best_wall = f64::INFINITY;
    let mut events = 0;
    let mut peak = 0;
    for _ in 0..repeats {
        let (e, w, p) = run_flood(n, rounds, backend, 0xbe9c);
        best_wall = best_wall.min(w);
        events = e;
        peak = p;
    }
    Point {
        n,
        backend,
        events,
        wall_secs: best_wall,
        events_per_sec: events as f64 / best_wall,
        peak_depth: peak,
    }
}

/// Per-n round budget targeting `target_events` total dispatched events,
/// so every n gets a comparable measurement window.
fn rounds_for(n: usize, target_events: u64) -> u64 {
    (target_events / (n * n) as u64).max(2)
}

fn queue_bench(quick: bool, repeats: u32, out: Option<&str>) -> ExitCode {
    let (ns, target): (&[usize], u64) = if quick {
        (&[16, 128], 400_000)
    } else {
        (&[16, 64, 128, 256], 3_000_000)
    };
    let mut points: Vec<Point> = Vec::new();
    for &n in ns {
        let rounds = rounds_for(n, target);
        for backend in QueueBackend::ALL {
            let p = measure(n, rounds, backend, repeats);
            eprintln!(
                "n={:>3} {:>8}: {:>9} events in {:>8.1}ms  ({:>11.0} events/s, peak depth {})",
                p.n,
                p.backend.name(),
                p.events,
                p.wall_secs * 1e3,
                p.events_per_sec,
                p.peak_depth
            );
            points.push(p);
        }
        // Both backends must have dispatched the identical event stream.
        let [heap_point, cal_point] = &points[points.len() - 2..] else {
            unreachable!("two backends just measured");
        };
        assert_eq!(
            heap_point.events, cal_point.events,
            "backends dispatched different event counts — determinism bug"
        );
    }
    // The acceptance line CI greps: calendar vs heap at the largest n.
    let largest = *ns.last().expect("non-empty sweep");
    let eps_of = |backend: QueueBackend| {
        points
            .iter()
            .find(|p| p.n == largest && p.backend == backend)
            .expect("measured")
            .events_per_sec
    };
    let ratio = eps_of(QueueBackend::Calendar) / eps_of(QueueBackend::Heap);
    let pass = ratio >= 1.0;
    eprintln!(
        "check: n={largest} calendar/heap = {ratio:.2}x ({})",
        if pass { "PASS" } else { "FAIL" }
    );

    let doc = Json::obj([
        ("bench", Json::str("queue")),
        ("workload", Json::str("flood")),
        ("quick", Json::Bool(quick)),
        ("repeats", Json::u64(repeats as u64)),
        ("target_events", Json::u64(target)),
        (
            "points",
            Json::Arr(
                points
                    .iter()
                    .map(|p| {
                        Json::obj([
                            ("n", Json::u64(p.n as u64)),
                            ("backend", Json::str(p.backend.name())),
                            ("events", Json::u64(p.events)),
                            ("wall_ms", Json::Num(p.wall_secs * 1e3)),
                            ("events_per_sec", Json::Num(p.events_per_sec)),
                            ("peak_queue_depth", Json::u64(p.peak_depth as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "speedup",
            Json::Arr(
                ns.iter()
                    .map(|&n| {
                        let of = |b: QueueBackend| {
                            points
                                .iter()
                                .find(|p| p.n == n && p.backend == b)
                                .expect("measured")
                                .events_per_sec
                        };
                        Json::obj([
                            ("n", Json::u64(n as u64)),
                            (
                                "calendar_over_heap",
                                Json::Num(of(QueueBackend::Calendar) / of(QueueBackend::Heap)),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let rendered = doc.render_pretty();
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("error: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        None => println!("{rendered}"),
    }
    if pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// One measured point of the profile sweep: an honest committee of `n`
/// run to `rounds` blocks, with the observability registry snapshot and
/// the analytic verify prediction beside the measurement.
struct ProfilePoint {
    n: usize,
    accountable: bool,
    rounds: u64,
    wall_secs: f64,
    obs: prft_sim::ObsRegistry,
    /// Raw hook counters, including the memo hit/miss split — the memo
    /// counters are deliberately *not* in the scenario-facing registry
    /// (reports stay mode-identical), so the bench carries them here.
    hooks: prft_sim::obs::hooks::HookSnapshot,
    predicted_verifies: u64,
    predicted_memo_misses: u64,
}

/// Analytic signature-verify count for one honest run: `rounds` rounds,
/// committee `n`, quorum `q = n − t0`, `t0 = ⌈n/4⌉ − 1`.
///
/// Per replica per round, from the handler structure (each broadcast is
/// self-delivered, so a phase's quorum of n senders lands n messages on
/// every replica; messages from *past* rounds are dropped unverified —
/// except Finals — so a phase that advances the round leaves its tail
/// unchecked):
/// * Propose: 1 (leader ballot);
/// * Vote: n votes × (ballot + attached propose `s_pro`) = 2n;
/// * Commit: each commit costs ballot + certificate (commit + q votes)
///   = q + 2. Non-accountable rounds finalize at the commit quorum, so
///   only q commits are checked: q(q+2). Accountable rounds stay open
///   through Reveal, so all n are: n(q+2);
/// * Reveal (accountable only): each reveal carries q commit
///   certificates of q + 1 signatures each, and the round advances at
///   the reveal quorum: q(1 + q(q+1)) — the O(n·q²) ≈ O(n³/
///   replica-round) term that dominates at scale, the verify-side twin
///   of Table 3's O(n³κ) communication bound;
/// * Final: 1 each; Finals act across rounds, so each non-final round
///   contributes n (the last round's tail hits passive replicas).
///
/// The constant factors are derived, not fitted; the `profile` check
/// fails if measurement drifts more than 10% from this model.
fn predicted_verifies(n: usize, rounds: u64, accountable: bool) -> u64 {
    let n64 = n as u64;
    let t0 = n64.div_ceil(4) - 1;
    let q = n64 - t0;
    let per_replica_round = if accountable {
        1 + 2 * n64 + n64 * (q + 2) + q * (1 + q * (q + 1))
    } else {
        1 + 2 * n64 + q * (q + 2)
    };
    n64 * (rounds * per_replica_round + rounds.saturating_sub(1) * n64)
}

/// Distinct-content model: how many verifications the memoized fast path
/// actually hashes (`verify.memo_miss`). Each replica verifies every
/// distinct signed content exactly once; all re-checks — vote attachments,
/// certificate walks, Reveal-phase certificate re-validation — are memo
/// hits because their contents arrived earlier in the same round (votes
/// precede the certificates quoting them; the `Arc`-shared certificate
/// allocations in a Reveal are the very ones validated at Commit):
/// * Propose: 1 distinct leader ballot;
/// * Vote: n distinct vote ballots (the attached propose is a hit);
/// * Commit: each certificate's commit ballot is distinct per sender —
///   n in accountable rounds (all commits processed), q when the round
///   finalizes at the commit quorum; every vote inside is a hit;
/// * Reveal (accountable): q distinct reveal ballots; every quoted
///   certificate is a pointer-keyed cache hit;
/// * Final: n distinct finals per non-final round.
///
/// So per replica-round: accountable `1 + 2n + q`, plain `1 + n + q` —
/// the O(n·q²) verify term collapses to O(n). The `profile` check holds
/// this model to 0.1%: every constant is structural, nothing is fitted.
fn predicted_memo_misses(n: usize, rounds: u64, accountable: bool) -> u64 {
    let n64 = n as u64;
    let t0 = n64.div_ceil(4) - 1;
    let q = n64 - t0;
    let per_replica_round = if accountable {
        1 + 2 * n64 + q
    } else {
        1 + n64 + q
    };
    n64 * (rounds * per_replica_round + rounds.saturating_sub(1) * n64)
}

/// Runs one honest committee point and snapshots its observability
/// registry. Hooks and timers are reset first so the registry holds this
/// run's exact deltas (same contract as the scenario runner).
fn run_profile_point(n: usize, accountable: bool, rounds: u64) -> ProfilePoint {
    let spec = prft_lab::ScenarioSpec::new(
        format!("profile-n{n}-{}", if accountable { "acc" } else { "plain" }),
        n,
        rounds,
    )
    .accountable(accountable);
    prft_sim::obs::hooks::reset();
    prft_sim::obs::profile_reset();
    let t0 = Instant::now();
    let (sim, _outcome) =
        prft_lab::run_sim(&spec, prft_lab::derive_seed(spec.base_seed, 0), |_| {});
    let wall_secs = t0.elapsed().as_secs_f64();
    let hooks = prft_sim::obs::hooks::snapshot();
    let obs = prft_core::obs::collect(&sim, &hooks);
    // Rounds actually executed (crash-free honest runs complete exactly
    // `max_rounds`, but read it back rather than assume).
    let rounds_done = obs.counter("replica.rounds_entered") / n as u64;
    ProfilePoint {
        n,
        accountable,
        rounds: rounds_done,
        wall_secs,
        obs,
        hooks,
        predicted_verifies: predicted_verifies(n, rounds_done, accountable),
        predicted_memo_misses: predicted_memo_misses(n, rounds_done, accountable),
    }
}

/// Renders the per-scope wall-clock timer table (empty unless the binary
/// was built with `--features profiling`).
fn timers_json() -> Json {
    Json::obj(
        prft_sim::obs::profile_snapshot()
            .into_iter()
            .map(|(name, stat)| {
                (
                    name,
                    Json::obj([
                        ("calls", Json::u64(stat.calls)),
                        ("total_ns", Json::u64(stat.total_ns)),
                    ]),
                )
            }),
    )
}

/// Wall-clock budget (seconds) for the accountable n = 128 point in
/// `--quick` mode. Deliberately generous — a release build lands well
/// under a second; the gate only trips if the fast path regresses to
/// reference-like O(n·q²) hashing.
const QUICK_WALL_BUDGET_SECS: f64 = 30.0;

fn profile_bench(quick: bool, out: Option<&str>) -> ExitCode {
    let ns: &[usize] = if quick {
        &[8, 16, 128]
    } else {
        &[16, 64, 128, 256, 512]
    };
    let rounds = 2;
    let mut points: Vec<(ProfilePoint, Json)> = Vec::new();
    for &accountable in &[false, true] {
        for &n in ns {
            let p = run_profile_point(n, accountable, rounds);
            let timers = timers_json();
            let verifies = p.obs.counter("crypto.sig_verifies");
            eprintln!(
                "n={:>3} {:>5}: {:>11} verifies (predicted {:>11}), {:>8} hashed \
                 (memo {:>11} hits / {:>8} misses), {:>9} clone bytes, \
                 {:>8} events, {:>8.1}ms",
                p.n,
                if p.accountable { "acc" } else { "plain" },
                verifies,
                p.predicted_verifies,
                p.hooks.memo_misses,
                p.hooks.memo_hits,
                p.hooks.memo_misses,
                p.obs.counter("engine.clone_bytes"),
                p.obs.counter("engine.events_dispatched"),
                p.wall_secs * 1e3,
            );
            points.push((p, timers));
        }
    }
    // Check 1 (CI greps this line): measured vs analytic *logical* verify
    // count at the largest accountable n. Mode-invariant by construction —
    // a memo hit charges exactly what the reference path would have paid.
    let largest = points
        .iter()
        .filter(|(p, _)| p.accountable)
        .max_by_key(|(p, _)| p.n)
        .map(|(p, _)| p)
        .expect("accountable points swept");
    let measured = largest.obs.counter("crypto.sig_verifies");
    let predicted = largest.predicted_verifies;
    let ratio = measured as f64 / predicted as f64;
    let pass = (ratio - 1.0).abs() <= 0.10;
    eprintln!(
        "check: n={} accountable verifies measured/predicted = {ratio:.3} ({})",
        largest.n,
        if pass { "PASS" } else { "FAIL" }
    );
    // Check 2: the *actual* hash count must match the distinct-content
    // model to 0.1% — this is the memoization working, not a tuning knob.
    let memo_measured = largest.hooks.memo_misses;
    let memo_predicted = largest.predicted_memo_misses;
    let memo_ratio = memo_measured as f64 / memo_predicted as f64;
    let memo_pass = (memo_ratio - 1.0).abs() <= 0.001;
    eprintln!(
        "check: n={} accountable memo misses measured/predicted = {memo_ratio:.4} ({})",
        largest.n,
        if memo_pass { "PASS" } else { "FAIL" }
    );
    // Check 3: conservation — every logical verify is either a memo hit
    // or a real hash, at every point, exactly. (Honest runs have no
    // view-change traffic, the one path that verifies outside the cache.)
    let identity_pass = points
        .iter()
        .all(|(p, _)| p.hooks.memo_hits + p.hooks.memo_misses == p.hooks.sig_verifies);
    eprintln!(
        "check: memo hits + misses == sig verifies at every point ({})",
        if identity_pass { "PASS" } else { "FAIL" }
    );
    // Check 4 (--quick only): wall-clock budget on accountable n = 128.
    let wall_check = quick.then(|| {
        let p128 = points
            .iter()
            .map(|(p, _)| p)
            .find(|p| p.accountable && p.n == 128)
            .expect("quick sweep includes accountable n=128");
        let wall_pass = p128.wall_secs <= QUICK_WALL_BUDGET_SECS;
        eprintln!(
            "check: n=128 accountable quick wall {:.2}s within {QUICK_WALL_BUDGET_SECS:.0}s \
             budget ({})",
            p128.wall_secs,
            if wall_pass { "PASS" } else { "FAIL" }
        );
        (p128.wall_secs, wall_pass)
    });
    let all_pass = pass && memo_pass && identity_pass && wall_check.is_none_or(|(_, p)| p);

    let doc = Json::obj([
        ("bench", Json::str("profile")),
        ("quick", Json::Bool(quick)),
        ("rounds", Json::u64(rounds)),
        (
            "profiling_enabled",
            Json::Bool(prft_sim::obs::profiling_enabled()),
        ),
        (
            "points",
            Json::Arr(
                points
                    .iter()
                    .map(|(p, timers)| {
                        Json::obj([
                            ("n", Json::u64(p.n as u64)),
                            ("accountable", Json::Bool(p.accountable)),
                            ("rounds", Json::u64(p.rounds)),
                            ("wall_ms", Json::Num(p.wall_secs * 1e3)),
                            (
                                "sig_verifies",
                                Json::u64(p.obs.counter("crypto.sig_verifies")),
                            ),
                            ("predicted_sig_verifies", Json::u64(p.predicted_verifies)),
                            ("verify.memo_hit", Json::u64(p.hooks.memo_hits)),
                            ("verify.memo_miss", Json::u64(p.hooks.memo_misses)),
                            ("predicted_memo_misses", Json::u64(p.predicted_memo_misses)),
                            (
                                "clone_bytes",
                                Json::u64(p.obs.counter("engine.clone_bytes")),
                            ),
                            (
                                "events_dispatched",
                                Json::u64(p.obs.counter("engine.events_dispatched")),
                            ),
                            (
                                "peak_queue_depth",
                                Json::u64(p.obs.gauge("engine.peak_queue_depth")),
                            ),
                            ("timers", timers.clone()),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "check",
            Json::obj([
                ("n", Json::u64(largest.n as u64)),
                ("measured", Json::u64(measured)),
                ("predicted", Json::u64(predicted)),
                ("ratio", Json::Num(ratio)),
                ("pass", Json::Bool(pass)),
            ]),
        ),
        (
            "memo_check",
            Json::obj([
                ("n", Json::u64(largest.n as u64)),
                ("measured", Json::u64(memo_measured)),
                ("predicted", Json::u64(memo_predicted)),
                ("ratio", Json::Num(memo_ratio)),
                ("pass", Json::Bool(memo_pass)),
            ]),
        ),
        ("memo_identity_pass", Json::Bool(identity_pass)),
        (
            "wall_budget",
            match wall_check {
                Some((wall_secs, wall_pass)) => Json::obj([
                    ("n", Json::u64(128)),
                    ("wall_secs", Json::Num(wall_secs)),
                    ("budget_secs", Json::Num(QUICK_WALL_BUDGET_SECS)),
                    ("pass", Json::Bool(wall_pass)),
                ]),
                None => Json::Null,
            },
        ),
    ]);
    let rendered = doc.render_pretty();
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("error: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        None => println!("{rendered}"),
    }
    if all_pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// One measured point of the workload sweep.
struct WorkloadPoint {
    clients: usize,
    rounds: u64,
    events: u64,
    wall_secs: f64,
    stats: prft_lab::WorkloadRunStats,
}

/// Runs one open-loop client population against a fixed 8-replica
/// committee and measures engine throughput plus commit-latency
/// percentiles. The round budget scales with the offered load (2 txs per
/// client, 512-tx batches) so every population size gets enough committee
/// rounds to drain its mempool, plus fixed slack for ramp-up and the
/// retry tail.
fn run_workload_point(clients: usize) -> WorkloadPoint {
    const TXS_PER_CLIENT: u64 = 2;
    const BATCH: u64 = 512;
    let offered = clients as u64 * TXS_PER_CLIENT;
    let rounds = offered.div_ceil(BATCH) + 40;
    let spec = prft_lab::ScenarioSpec::new(format!("bench-wl-{clients}"), 8, rounds)
        .base_seed(0xb_10ad)
        .horizon(20_000_000)
        .workload(
            prft_lab::WorkloadSpec::steady(clients, 50)
                .txs_per_client(TXS_PER_CLIENT)
                .max_batch(BATCH as usize),
        );
    let t0 = Instant::now();
    let (sim, _outcome) =
        prft_lab::run_workload_sim(&spec, prft_lab::derive_seed(spec.base_seed, 0), |_| {});
    let wall_secs = t0.elapsed().as_secs_f64();
    WorkloadPoint {
        clients,
        rounds,
        events: sim.events_dispatched(),
        wall_secs,
        stats: prft_lab::WorkloadRunStats::collect(&sim),
    }
}

fn workload_bench(quick: bool, out: Option<&str>) -> ExitCode {
    let ns: &[usize] = if quick {
        &[100, 1000]
    } else {
        &[100, 300, 1000, 3000, 10_000]
    };
    let mut points: Vec<WorkloadPoint> = Vec::new();
    for &clients in ns {
        let p = run_workload_point(clients);
        eprintln!(
            "clients={:>6}: {:>9} events in {:>9.1}ms ({:>11.0} events/s), \
             {}/{} committed, latency p50={} p90={} p99={} ticks",
            p.clients,
            p.events,
            p.wall_secs * 1e3,
            p.events as f64 / p.wall_secs,
            p.stats.committed,
            p.stats.submitted,
            p.stats.latency.p50,
            p.stats.latency.p90,
            p.stats.latency.p99,
        );
        points.push(p);
    }
    // Check 1 (CI greps this line): conservation at every point.
    let conserve_pass = points
        .iter()
        .all(|p| p.stats.submitted == p.stats.committed + p.stats.dropped + p.stats.pending);
    eprintln!(
        "check: submitted == committed + dropped + pending at every point ({})",
        if conserve_pass { "PASS" } else { "FAIL" }
    );
    // Check 2: the largest population commits its whole offered load —
    // the round budget is sized for it, so leftovers mean a regression in
    // batching, retries, or the client path.
    let largest = points.last().expect("non-empty sweep");
    let drain_pass = largest.stats.committed == largest.stats.submitted;
    eprintln!(
        "check: clients={} committed {}/{} of offered load ({})",
        largest.clients,
        largest.stats.committed,
        largest.stats.submitted,
        if drain_pass { "PASS" } else { "FAIL" }
    );

    let doc = Json::obj([
        ("bench", Json::str("workload")),
        ("quick", Json::Bool(quick)),
        ("committee_n", Json::u64(8)),
        ("arrival", Json::str("steady interval=50")),
        (
            "points",
            Json::Arr(
                points
                    .iter()
                    .map(|p| {
                        Json::obj([
                            ("clients", Json::u64(p.clients as u64)),
                            ("rounds", Json::u64(p.rounds)),
                            ("events", Json::u64(p.events)),
                            ("wall_ms", Json::Num(p.wall_secs * 1e3)),
                            ("events_per_sec", Json::Num(p.events as f64 / p.wall_secs)),
                            ("submitted", Json::u64(p.stats.submitted)),
                            ("committed", Json::u64(p.stats.committed)),
                            ("dropped", Json::u64(p.stats.dropped)),
                            ("pending", Json::u64(p.stats.pending)),
                            ("retries", Json::u64(p.stats.retries)),
                            ("latency_p50", Json::u64(p.stats.latency.p50)),
                            ("latency_p90", Json::u64(p.stats.latency.p90)),
                            ("latency_p99", Json::u64(p.stats.latency.p99)),
                            ("latency_max", Json::u64(p.stats.latency.max)),
                            (
                                "mempool_peak_occupancy",
                                Json::u64(p.stats.mempool_peak_occupancy),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("conservation_pass", Json::Bool(conserve_pass)),
        (
            "drain_check",
            Json::obj([
                ("clients", Json::u64(largest.clients as u64)),
                ("committed", Json::u64(largest.stats.committed)),
                ("submitted", Json::u64(largest.stats.submitted)),
                ("pass", Json::Bool(drain_pass)),
            ]),
        ),
    ]);
    let rendered = doc.render_pretty();
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("error: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        None => println!("{rendered}"),
    }
    if conserve_pass && drain_pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: prft-bench queue [--quick] [--out FILE] [--repeats R]\n\
         \x20      prft-bench profile [--quick] [--out FILE]\n\
         \x20      prft-bench workload [--quick] [--out FILE]\n\
         \n\
         queue: sweeps committee sizes × event-queue backends over a\n\
         queue-bound flood workload and emits a BENCH_queue.json document\n\
         (schema: docs/PERFORMANCE.md). Exits non-zero if the calendar\n\
         backend is slower than the heap reference at the largest swept n.\n\
         \n\
         profile: runs honest pRFT committees (accountable × plain,\n\
         n = 16, 64, 128, 256, 512) and emits a BENCH_profile.json\n\
         document of logical verify counts, memo hits/misses, clone\n\
         bytes, and wall time per point (schema: docs/OBSERVABILITY.md).\n\
         Build with --features profiling to add per-scope wall-clock\n\
         timers. Exits non-zero if the logical verify count drifts >10%\n\
         from the analytic model, the hashed count (verify.memo_miss)\n\
         drifts >0.1% from the distinct-content model, memo hits + misses\n\
         != sig verifies anywhere, or (--quick) the accountable n = 128\n\
         point blows its wall-clock budget.\n\
         \n\
         workload: sweeps open-loop client populations (n = 100 … 10000)\n\
         against an 8-replica committee and emits a BENCH_workload.json\n\
         document of events/sec and commit-latency percentiles per point\n\
         (schema: docs/WORKLOAD.md). Exits non-zero if any point leaks\n\
         transactions or the largest population fails to commit its\n\
         offered load.\n\
         \n\
         options:\n\
         \x20 --quick      small sweep for CI smoke (queue: n = 16, 128;\n\
         \x20              profile: n = 8, 16, 128; workload: 100, 1000)\n\
         \x20 --out FILE   write the JSON to FILE instead of stdout\n\
         \x20 --repeats R  best-of-R wall times per point (queue only,\n\
         \x20              default 3)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    match command.as_str() {
        "queue" => {
            let mut quick = false;
            let mut out: Option<String> = None;
            let mut repeats = 3u32;
            let mut it = args[1..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--quick" => quick = true,
                    "--out" => match it.next() {
                        Some(path) => out = Some(path.clone()),
                        None => return usage(),
                    },
                    "--repeats" => match it.next().and_then(|r| r.parse().ok()) {
                        Some(r) if r > 0 => repeats = r,
                        _ => return usage(),
                    },
                    _ => return usage(),
                }
            }
            queue_bench(quick, repeats, out.as_deref())
        }
        "profile" => {
            let mut quick = false;
            let mut out: Option<String> = None;
            let mut it = args[1..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--quick" => quick = true,
                    "--out" => match it.next() {
                        Some(path) => out = Some(path.clone()),
                        None => return usage(),
                    },
                    _ => return usage(),
                }
            }
            profile_bench(quick, out.as_deref())
        }
        "workload" => {
            let mut quick = false;
            let mut out: Option<String> = None;
            let mut it = args[1..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--quick" => quick = true,
                    "--out" => match it.next() {
                        Some(path) => out = Some(path.clone()),
                        None => return usage(),
                    },
                    _ => return usage(),
                }
            }
            workload_bench(quick, out.as_deref())
        }
        "--help" | "-h" | "help" => {
            usage();
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
