//! The `prft-bench` binary: engine micro-benchmarks with machine-readable
//! output, seeding the repo's recorded perf trajectory (`BENCH_*.json`).
//!
//! ```text
//! prft-bench queue [--quick] [--out FILE] [--repeats R]
//! ```
//!
//! `queue` sweeps committee sizes n ∈ {16, 64, 128, 256} × both event-queue
//! backends (heap reference, calendar) over a queue-bound flood workload
//! (every node broadcasts through a jittered link until a per-node round
//! budget drains; queue depth is ~n², which is exactly the pressure a
//! large-n pRFT committee puts on the engine) and reports events/sec, wall
//! time, and peak queue depth per point. `--quick` shrinks the sweep to
//! n ∈ {16, 128} with fewer events for CI smoke use.
//!
//! The workload is deterministic (seeded link jitter), so both backends
//! dispatch the **same** events in the same order — the wall-clock delta
//! is pure queue cost. The binary exits non-zero if the calendar backend
//! fails to at least match the heap backend at the largest swept n, which
//! is what lets CI grep a PASS line instead of parsing JSON.
//!
//! Schema of the emitted JSON: see `docs/PERFORMANCE.md`.

use prft_lab::json::Json;
use prft_sim::{
    Context, LinkModel, Node, QueueBackend, SimRng, SimTime, Simulation, TimerId, WireMessage,
};
use prft_types::NodeId;
use std::process::ExitCode;
use std::time::Instant;

/// A 64-byte inline payload: big enough that moving messages through a
/// sifting heap is visible, small enough to stay allocation-free.
#[derive(Clone)]
struct FloodMsg([u64; 8]);

impl WireMessage for FloodMsg {
    fn kind(&self) -> &'static str {
        "Flood"
    }
    fn wire_bytes(&self) -> usize {
        64
    }
}

/// Jittered constant-delay link: `base + U[0, spread)` ticks, drawn from
/// the engine RNG, so deliveries spread across ticks (the calendar queue
/// sees many occupied buckets, not one burst bucket).
struct JitterLink {
    base: u64,
    spread: u64,
}

impl LinkModel for JitterLink {
    fn deliver_at(&mut self, _f: NodeId, _t: NodeId, sent: SimTime, rng: &mut SimRng) -> SimTime {
        SimTime(sent.0 + self.base + rng.below(self.spread))
    }
}

/// Flood node: broadcasts on start; every time it has heard `n` messages
/// it broadcasts again, until its round budget drains. Keeps ~n² events
/// in flight for the whole run.
struct FloodNode {
    n: usize,
    rounds_left: u64,
    heard: usize,
}

impl Node for FloodNode {
    type Msg = FloodMsg;

    fn on_start(&mut self, ctx: &mut Context<FloodMsg>) {
        ctx.broadcast(FloodMsg([ctx.me().0 as u64; 8]));
    }

    fn on_message(&mut self, ctx: &mut Context<FloodMsg>, _from: NodeId, msg: FloodMsg) {
        self.heard += 1;
        if self.heard >= self.n && self.rounds_left > 0 {
            self.heard = 0;
            self.rounds_left -= 1;
            ctx.broadcast(FloodMsg([msg.0[0].wrapping_add(1); 8]));
        }
    }

    fn on_timer(&mut self, _: &mut Context<FloodMsg>, _: TimerId) {}
}

/// One measured point of the sweep.
struct Point {
    n: usize,
    backend: QueueBackend,
    events: u64,
    wall_secs: f64,
    events_per_sec: f64,
    peak_depth: usize,
}

/// Runs the flood once and returns (events, wall seconds, peak depth).
/// The event count is a pure function of (n, rounds, seed) — identical
/// across backends, which the caller asserts.
fn run_flood(n: usize, rounds: u64, backend: QueueBackend, seed: u64) -> (u64, f64, usize) {
    let nodes = (0..n)
        .map(|_| FloodNode {
            n,
            rounds_left: rounds,
            heard: 0,
        })
        .collect();
    let link = Box::new(JitterLink {
        base: 8,
        spread: 48,
    });
    let mut sim = Simulation::with_backend(nodes, link, seed, backend);
    let t0 = Instant::now();
    sim.run();
    let wall = t0.elapsed().as_secs_f64();
    (sim.events_dispatched(), wall, sim.peak_queue_depth())
}

/// Measures one (n, backend) point: best-of-`repeats` wall time (the
/// event count and peak depth are deterministic; only wall time jitters).
fn measure(n: usize, rounds: u64, backend: QueueBackend, repeats: u32) -> Point {
    let mut best_wall = f64::INFINITY;
    let mut events = 0;
    let mut peak = 0;
    for _ in 0..repeats {
        let (e, w, p) = run_flood(n, rounds, backend, 0xbe9c);
        best_wall = best_wall.min(w);
        events = e;
        peak = p;
    }
    Point {
        n,
        backend,
        events,
        wall_secs: best_wall,
        events_per_sec: events as f64 / best_wall,
        peak_depth: peak,
    }
}

/// Per-n round budget targeting `target_events` total dispatched events,
/// so every n gets a comparable measurement window.
fn rounds_for(n: usize, target_events: u64) -> u64 {
    (target_events / (n * n) as u64).max(2)
}

fn queue_bench(quick: bool, repeats: u32, out: Option<&str>) -> ExitCode {
    let (ns, target): (&[usize], u64) = if quick {
        (&[16, 128], 400_000)
    } else {
        (&[16, 64, 128, 256], 3_000_000)
    };
    let mut points: Vec<Point> = Vec::new();
    for &n in ns {
        let rounds = rounds_for(n, target);
        for backend in QueueBackend::ALL {
            let p = measure(n, rounds, backend, repeats);
            eprintln!(
                "n={:>3} {:>8}: {:>9} events in {:>8.1}ms  ({:>11.0} events/s, peak depth {})",
                p.n,
                p.backend.name(),
                p.events,
                p.wall_secs * 1e3,
                p.events_per_sec,
                p.peak_depth
            );
            points.push(p);
        }
        // Both backends must have dispatched the identical event stream.
        let [heap_point, cal_point] = &points[points.len() - 2..] else {
            unreachable!("two backends just measured");
        };
        assert_eq!(
            heap_point.events, cal_point.events,
            "backends dispatched different event counts — determinism bug"
        );
    }
    // The acceptance line CI greps: calendar vs heap at the largest n.
    let largest = *ns.last().expect("non-empty sweep");
    let eps_of = |backend: QueueBackend| {
        points
            .iter()
            .find(|p| p.n == largest && p.backend == backend)
            .expect("measured")
            .events_per_sec
    };
    let ratio = eps_of(QueueBackend::Calendar) / eps_of(QueueBackend::Heap);
    let pass = ratio >= 1.0;
    eprintln!(
        "check: n={largest} calendar/heap = {ratio:.2}x ({})",
        if pass { "PASS" } else { "FAIL" }
    );

    let doc = Json::obj([
        ("bench", Json::str("queue")),
        ("workload", Json::str("flood")),
        ("quick", Json::Bool(quick)),
        ("repeats", Json::u64(repeats as u64)),
        ("target_events", Json::u64(target)),
        (
            "points",
            Json::Arr(
                points
                    .iter()
                    .map(|p| {
                        Json::obj([
                            ("n", Json::u64(p.n as u64)),
                            ("backend", Json::str(p.backend.name())),
                            ("events", Json::u64(p.events)),
                            ("wall_ms", Json::Num(p.wall_secs * 1e3)),
                            ("events_per_sec", Json::Num(p.events_per_sec)),
                            ("peak_queue_depth", Json::u64(p.peak_depth as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "speedup",
            Json::Arr(
                ns.iter()
                    .map(|&n| {
                        let of = |b: QueueBackend| {
                            points
                                .iter()
                                .find(|p| p.n == n && p.backend == b)
                                .expect("measured")
                                .events_per_sec
                        };
                        Json::obj([
                            ("n", Json::u64(n as u64)),
                            (
                                "calendar_over_heap",
                                Json::Num(of(QueueBackend::Calendar) / of(QueueBackend::Heap)),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let rendered = doc.render_pretty();
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("error: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        None => println!("{rendered}"),
    }
    if pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: prft-bench queue [--quick] [--out FILE] [--repeats R]\n\
         \n\
         Sweeps committee sizes × event-queue backends over a queue-bound\n\
         flood workload and emits a BENCH_queue.json document (schema:\n\
         docs/PERFORMANCE.md). Exits non-zero if the calendar backend is\n\
         slower than the heap reference at the largest swept n.\n\
         \n\
         options:\n\
         \x20 --quick      small sweep (n = 16, 128) for CI smoke\n\
         \x20 --out FILE   write the JSON to FILE instead of stdout\n\
         \x20 --repeats R  best-of-R wall times per point (default 3)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    match command.as_str() {
        "queue" => {
            let mut quick = false;
            let mut out: Option<String> = None;
            let mut repeats = 3u32;
            let mut it = args[1..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--quick" => quick = true,
                    "--out" => match it.next() {
                        Some(path) => out = Some(path.clone()),
                        None => return usage(),
                    },
                    "--repeats" => match it.next().and_then(|r| r.parse().ok()) {
                        Some(r) if r > 0 => repeats = r,
                        _ => return usage(),
                    },
                    _ => return usage(),
                }
            }
            queue_bench(quick, repeats, out.as_deref())
        }
        "--help" | "-h" | "help" => {
            usage();
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
