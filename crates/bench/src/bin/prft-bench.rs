//! The `prft-bench` binary: engine micro-benchmarks with machine-readable
//! output, seeding the repo's recorded perf trajectory (`BENCH_*.json`).
//!
//! ```text
//! prft-bench queue [--quick] [--out FILE] [--repeats R]
//! prft-bench profile [--quick] [--out FILE]
//! prft-bench workload [--quick] [--out FILE]
//! prft-bench checkpoint [--quick] [--out FILE] [--repeats R]
//! prft-bench diff <current.json> <baseline.json> [--tolerance F]
//! ```
//!
//! `queue` sweeps committee sizes n ∈ {16, 64, 128, 256} × both event-queue
//! backends (heap reference, calendar) over a queue-bound flood workload
//! (every node broadcasts through a jittered link until a per-node round
//! budget drains; queue depth is ~n², which is exactly the pressure a
//! large-n pRFT committee puts on the engine) and reports events/sec, wall
//! time, and peak queue depth per point. `--quick` shrinks the sweep to
//! n ∈ {16, 128} with fewer events for CI smoke use.
//!
//! `profile` runs honest pRFT committees (accountable and non-accountable,
//! n ∈ {16, 64, 128, 256, 512}; `--quick` shrinks to n ∈ {8, 16, 128})
//! and reports where the work goes: logical signature verifies, actual
//! memo hits/misses (`verify.memo_hit` / `verify.memo_miss`), fan-out
//! clone bytes, events dispatched, wall time — plus per-scope wall-clock
//! timers when built with `--features profiling`. Three checks guard the
//! accountable points, each with a greppable PASS/FAIL line:
//! * the **logical** verify count must match the analytic per-round
//!   prediction within 10% (the O(n·q²) Reveal-phase term, the verify
//!   twin of Table 3's O(n³κ) bound) — this count is mode-invariant, so
//!   it also pins the fast path's counting discipline;
//! * the **actual** hash count (`verify.memo_miss`) must match the
//!   distinct-content model within 0.1% — with memoization each distinct
//!   signed content is hashed once per replica, collapsing O(n·q²) to
//!   O(n) per replica-round;
//! * `verify.memo_hit + verify.memo_miss == crypto.sig_verifies` exactly
//!   (every verification is either answered from cache or hashed).
//!
//! `--quick` additionally enforces a generous wall-clock budget on the
//! accountable n = 128 point, so CI fails if the fast path regresses.
//!
//! `workload` sweeps open-loop client populations n ∈ {100, 300, 1000,
//! 3000, 10000} against a fixed 8-replica committee (steady arrivals,
//! batched proposals) and reports engine throughput (events/sec) and
//! commit-latency percentiles (p50/p90/p99 in virtual ticks) per point.
//! `--quick` shrinks the sweep to n ∈ {100, 1000}. Two greppable checks:
//! every point must conserve transactions (submitted == committed +
//! dropped + pending) and the largest population must commit its entire
//! offered load (no drops, nothing left pending).
//!
//! The workload is deterministic (seeded link jitter), so both backends
//! dispatch the **same** events in the same order — the wall-clock delta
//! is pure queue cost. The binary exits non-zero if the calendar backend
//! fails to at least match the heap backend at the largest swept n, which
//! is what lets CI grep a PASS line instead of parsing JSON.
//!
//! `checkpoint` measures the sweep-scale payoff of checkpoint/fork warm
//! starts (`docs/CHECKPOINTING.md`) on three late-divergence grids —
//! cells sharing a long common prefix that diverge only near the
//! horizon, the shape where forking pays most: committee crash
//! divergence, delay-rule cells diverging *after* a shared lift
//! (exercising suffix captures via the batch capture hints), and a
//! workload (committee-plus-clients) grid exercising the
//! `Simulation<Actor>` checkpoint path. Each grid runs twice at one
//! thread: cold (no store) and warm (one shared store with capture hints
//! installed, as the batch runners do); the report carries per-cell
//! deterministic event counts, both walls, the reuse accounting, and the
//! warm/cold speedup. Exits non-zero if warm and cold records differ
//! anywhere or no grid reaches 2× cells/sec warm over cold.
//!
//! `diff` compares a freshly measured bench JSON against a committed
//! baseline (`BENCH_*.json`) and exits non-zero on regression: exact
//! equality for deterministic counters (profile verify/memo counts,
//! workload conservation and latency percentiles, checkpoint per-cell
//! event counts), a relative tolerance (default 0.35) for wall-clock
//! ratios (queue calendar/heap, checkpoint warm/cold). CI runs it after
//! each `--quick` bench so perf regressions fail the build without any
//! JSON toolchain in the workflow.
//!
//! Schema of the emitted JSON: see `docs/PERFORMANCE.md`.

use prft_lab::json::Json;
use prft_sim::{
    Context, LinkModel, Node, QueueBackend, SimRng, SimTime, Simulation, TimerId, WireMessage,
};
use prft_types::NodeId;
use std::process::ExitCode;
use std::time::Instant;

/// A 64-byte inline payload: big enough that moving messages through a
/// sifting heap is visible, small enough to stay allocation-free.
#[derive(Clone)]
struct FloodMsg([u64; 8]);

impl WireMessage for FloodMsg {
    fn kind(&self) -> &'static str {
        "Flood"
    }
    fn wire_bytes(&self) -> usize {
        64
    }
}

/// Jittered constant-delay link: `base + U[0, spread)` ticks, drawn from
/// the engine RNG, so deliveries spread across ticks (the calendar queue
/// sees many occupied buckets, not one burst bucket).
struct JitterLink {
    base: u64,
    spread: u64,
}

impl LinkModel for JitterLink {
    fn deliver_at(&mut self, _f: NodeId, _t: NodeId, sent: SimTime, rng: &mut SimRng) -> SimTime {
        SimTime(sent.0 + self.base + rng.below(self.spread))
    }
}

/// Flood node: broadcasts on start; every time it has heard `n` messages
/// it broadcasts again, until its round budget drains. Keeps ~n² events
/// in flight for the whole run.
struct FloodNode {
    n: usize,
    rounds_left: u64,
    heard: usize,
}

impl Node for FloodNode {
    type Msg = FloodMsg;

    fn on_start(&mut self, ctx: &mut Context<FloodMsg>) {
        ctx.broadcast(FloodMsg([ctx.me().0 as u64; 8]));
    }

    fn on_message(&mut self, ctx: &mut Context<FloodMsg>, _from: NodeId, msg: FloodMsg) {
        self.heard += 1;
        if self.heard >= self.n && self.rounds_left > 0 {
            self.heard = 0;
            self.rounds_left -= 1;
            ctx.broadcast(FloodMsg([msg.0[0].wrapping_add(1); 8]));
        }
    }

    fn on_timer(&mut self, _: &mut Context<FloodMsg>, _: TimerId) {}
}

/// One measured point of the sweep.
struct Point {
    n: usize,
    backend: QueueBackend,
    events: u64,
    wall_secs: f64,
    events_per_sec: f64,
    peak_depth: usize,
}

/// Runs the flood once and returns (events, wall seconds, peak depth).
/// The event count is a pure function of (n, rounds, seed) — identical
/// across backends, which the caller asserts.
fn run_flood(n: usize, rounds: u64, backend: QueueBackend, seed: u64) -> (u64, f64, usize) {
    let nodes = (0..n)
        .map(|_| FloodNode {
            n,
            rounds_left: rounds,
            heard: 0,
        })
        .collect();
    let link = Box::new(JitterLink {
        base: 8,
        spread: 48,
    });
    let mut sim = Simulation::with_backend(nodes, link, seed, backend);
    let t0 = Instant::now();
    sim.run();
    let wall = t0.elapsed().as_secs_f64();
    (sim.events_dispatched(), wall, sim.peak_queue_depth())
}

/// Measures one (n, backend) point: best-of-`repeats` wall time (the
/// event count and peak depth are deterministic; only wall time jitters).
fn measure(n: usize, rounds: u64, backend: QueueBackend, repeats: u32) -> Point {
    let mut best_wall = f64::INFINITY;
    let mut events = 0;
    let mut peak = 0;
    for _ in 0..repeats {
        let (e, w, p) = run_flood(n, rounds, backend, 0xbe9c);
        best_wall = best_wall.min(w);
        events = e;
        peak = p;
    }
    Point {
        n,
        backend,
        events,
        wall_secs: best_wall,
        events_per_sec: events as f64 / best_wall,
        peak_depth: peak,
    }
}

/// Per-n round budget targeting `target_events` total dispatched events,
/// so every n gets a comparable measurement window.
fn rounds_for(n: usize, target_events: u64) -> u64 {
    (target_events / (n * n) as u64).max(2)
}

fn queue_bench(quick: bool, repeats: u32, out: Option<&str>) -> ExitCode {
    let (ns, target): (&[usize], u64) = if quick {
        (&[16, 128], 400_000)
    } else {
        (&[16, 64, 128, 256], 3_000_000)
    };
    let mut points: Vec<Point> = Vec::new();
    for &n in ns {
        let rounds = rounds_for(n, target);
        for backend in QueueBackend::ALL {
            let p = measure(n, rounds, backend, repeats);
            eprintln!(
                "n={:>3} {:>8}: {:>9} events in {:>8.1}ms  ({:>11.0} events/s, peak depth {})",
                p.n,
                p.backend.name(),
                p.events,
                p.wall_secs * 1e3,
                p.events_per_sec,
                p.peak_depth
            );
            points.push(p);
        }
        // Both backends must have dispatched the identical event stream.
        let [heap_point, cal_point] = &points[points.len() - 2..] else {
            unreachable!("two backends just measured");
        };
        assert_eq!(
            heap_point.events, cal_point.events,
            "backends dispatched different event counts — determinism bug"
        );
    }
    // The acceptance line CI greps: calendar vs heap at the largest n.
    let largest = *ns.last().expect("non-empty sweep");
    let eps_of = |backend: QueueBackend| {
        points
            .iter()
            .find(|p| p.n == largest && p.backend == backend)
            .expect("measured")
            .events_per_sec
    };
    let ratio = eps_of(QueueBackend::Calendar) / eps_of(QueueBackend::Heap);
    let pass = ratio >= 1.0;
    eprintln!(
        "check: n={largest} calendar/heap = {ratio:.2}x ({})",
        if pass { "PASS" } else { "FAIL" }
    );

    let doc = Json::obj([
        ("bench", Json::str("queue")),
        ("workload", Json::str("flood")),
        ("quick", Json::Bool(quick)),
        ("repeats", Json::u64(repeats as u64)),
        ("target_events", Json::u64(target)),
        (
            "points",
            Json::Arr(
                points
                    .iter()
                    .map(|p| {
                        Json::obj([
                            ("n", Json::u64(p.n as u64)),
                            ("backend", Json::str(p.backend.name())),
                            ("events", Json::u64(p.events)),
                            ("wall_ms", Json::Num(p.wall_secs * 1e3)),
                            ("events_per_sec", Json::Num(p.events_per_sec)),
                            ("peak_queue_depth", Json::u64(p.peak_depth as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "speedup",
            Json::Arr(
                ns.iter()
                    .map(|&n| {
                        let of = |b: QueueBackend| {
                            points
                                .iter()
                                .find(|p| p.n == n && p.backend == b)
                                .expect("measured")
                                .events_per_sec
                        };
                        Json::obj([
                            ("n", Json::u64(n as u64)),
                            (
                                "calendar_over_heap",
                                Json::Num(of(QueueBackend::Calendar) / of(QueueBackend::Heap)),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let rendered = doc.render_pretty();
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("error: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        None => println!("{rendered}"),
    }
    if pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// One measured point of the profile sweep: an honest committee of `n`
/// run to `rounds` blocks, with the observability registry snapshot and
/// the analytic verify prediction beside the measurement.
struct ProfilePoint {
    n: usize,
    accountable: bool,
    rounds: u64,
    wall_secs: f64,
    obs: prft_sim::ObsRegistry,
    /// Raw hook counters, including the memo hit/miss split — the memo
    /// counters are deliberately *not* in the scenario-facing registry
    /// (reports stay mode-identical), so the bench carries them here.
    hooks: prft_sim::obs::hooks::HookSnapshot,
    predicted_verifies: u64,
    predicted_memo_misses: u64,
}

/// Analytic signature-verify count for one honest run: `rounds` rounds,
/// committee `n`, quorum `q = n − t0`, `t0 = ⌈n/4⌉ − 1`.
///
/// Per replica per round, from the handler structure (each broadcast is
/// self-delivered, so a phase's quorum of n senders lands n messages on
/// every replica; messages from *past* rounds are dropped unverified —
/// except Finals — so a phase that advances the round leaves its tail
/// unchecked):
/// * Propose: 1 (leader ballot);
/// * Vote: n votes × (ballot + attached propose `s_pro`) = 2n;
/// * Commit: each commit costs ballot + certificate (commit + q votes)
///   = q + 2. Non-accountable rounds finalize at the commit quorum, so
///   only q commits are checked: q(q+2). Accountable rounds stay open
///   through Reveal, so all n are: n(q+2);
/// * Reveal (accountable only): each reveal carries q commit
///   certificates of q + 1 signatures each, and the round advances at
///   the reveal quorum: q(1 + q(q+1)) — the O(n·q²) ≈ O(n³/
///   replica-round) term that dominates at scale, the verify-side twin
///   of Table 3's O(n³κ) communication bound;
/// * Final: 1 each; Finals act across rounds, so each non-final round
///   contributes n (the last round's tail hits passive replicas).
///
/// The constant factors are derived, not fitted; the `profile` check
/// fails if measurement drifts more than 10% from this model.
fn predicted_verifies(n: usize, rounds: u64, accountable: bool) -> u64 {
    let n64 = n as u64;
    let t0 = n64.div_ceil(4) - 1;
    let q = n64 - t0;
    let per_replica_round = if accountable {
        1 + 2 * n64 + n64 * (q + 2) + q * (1 + q * (q + 1))
    } else {
        1 + 2 * n64 + q * (q + 2)
    };
    n64 * (rounds * per_replica_round + rounds.saturating_sub(1) * n64)
}

/// Distinct-content model: how many verifications the memoized fast path
/// actually hashes (`verify.memo_miss`). Each replica verifies every
/// distinct signed content exactly once; all re-checks — vote attachments,
/// certificate walks, Reveal-phase certificate re-validation — are memo
/// hits because their contents arrived earlier in the same round (votes
/// precede the certificates quoting them; the `Arc`-shared certificate
/// allocations in a Reveal are the very ones validated at Commit):
/// * Propose: 1 distinct leader ballot;
/// * Vote: n distinct vote ballots (the attached propose is a hit);
/// * Commit: each certificate's commit ballot is distinct per sender —
///   n in accountable rounds (all commits processed), q when the round
///   finalizes at the commit quorum; every vote inside is a hit;
/// * Reveal (accountable): q distinct reveal ballots; every quoted
///   certificate is a pointer-keyed cache hit;
/// * Final: n distinct finals per non-final round.
///
/// So per replica-round: accountable `1 + 2n + q`, plain `1 + n + q` —
/// the O(n·q²) verify term collapses to O(n). The `profile` check holds
/// this model to 0.1%: every constant is structural, nothing is fitted.
fn predicted_memo_misses(n: usize, rounds: u64, accountable: bool) -> u64 {
    let n64 = n as u64;
    let t0 = n64.div_ceil(4) - 1;
    let q = n64 - t0;
    let per_replica_round = if accountable {
        1 + 2 * n64 + q
    } else {
        1 + n64 + q
    };
    n64 * (rounds * per_replica_round + rounds.saturating_sub(1) * n64)
}

/// Runs one honest committee point and snapshots its observability
/// registry. Hooks and timers are reset first so the registry holds this
/// run's exact deltas (same contract as the scenario runner).
fn run_profile_point(n: usize, accountable: bool, rounds: u64) -> ProfilePoint {
    let spec = prft_lab::ScenarioSpec::new(
        format!("profile-n{n}-{}", if accountable { "acc" } else { "plain" }),
        n,
        rounds,
    )
    .accountable(accountable);
    prft_sim::obs::hooks::reset();
    prft_sim::obs::profile_reset();
    let t0 = Instant::now();
    let (sim, _outcome) =
        prft_lab::run_sim(&spec, prft_lab::derive_seed(spec.base_seed, 0), |_| {});
    let wall_secs = t0.elapsed().as_secs_f64();
    let hooks = prft_sim::obs::hooks::snapshot();
    let obs = prft_core::obs::collect(&sim, &hooks);
    // Rounds actually executed (crash-free honest runs complete exactly
    // `max_rounds`, but read it back rather than assume).
    let rounds_done = obs.counter("replica.rounds_entered") / n as u64;
    ProfilePoint {
        n,
        accountable,
        rounds: rounds_done,
        wall_secs,
        obs,
        hooks,
        predicted_verifies: predicted_verifies(n, rounds_done, accountable),
        predicted_memo_misses: predicted_memo_misses(n, rounds_done, accountable),
    }
}

/// Renders the per-scope wall-clock timer table (empty unless the binary
/// was built with `--features profiling`).
fn timers_json() -> Json {
    Json::obj(
        prft_sim::obs::profile_snapshot()
            .into_iter()
            .map(|(name, stat)| {
                (
                    name,
                    Json::obj([
                        ("calls", Json::u64(stat.calls)),
                        ("total_ns", Json::u64(stat.total_ns)),
                    ]),
                )
            }),
    )
}

/// Wall-clock budget (seconds) for the accountable n = 128 point in
/// `--quick` mode. Deliberately generous — a release build lands well
/// under a second; the gate only trips if the fast path regresses to
/// reference-like O(n·q²) hashing.
const QUICK_WALL_BUDGET_SECS: f64 = 30.0;

fn profile_bench(quick: bool, out: Option<&str>) -> ExitCode {
    let ns: &[usize] = if quick {
        &[8, 16, 128]
    } else {
        &[16, 64, 128, 256, 512]
    };
    let rounds = 2;
    let mut points: Vec<(ProfilePoint, Json)> = Vec::new();
    for &accountable in &[false, true] {
        for &n in ns {
            let p = run_profile_point(n, accountable, rounds);
            let timers = timers_json();
            let verifies = p.obs.counter("crypto.sig_verifies");
            eprintln!(
                "n={:>3} {:>5}: {:>11} verifies (predicted {:>11}), {:>8} hashed \
                 (memo {:>11} hits / {:>8} misses), {:>9} clone bytes, \
                 {:>8} events, {:>8.1}ms",
                p.n,
                if p.accountable { "acc" } else { "plain" },
                verifies,
                p.predicted_verifies,
                p.hooks.memo_misses,
                p.hooks.memo_hits,
                p.hooks.memo_misses,
                p.obs.counter("engine.clone_bytes"),
                p.obs.counter("engine.events_dispatched"),
                p.wall_secs * 1e3,
            );
            points.push((p, timers));
        }
    }
    // Check 1 (CI greps this line): measured vs analytic *logical* verify
    // count at the largest accountable n. Mode-invariant by construction —
    // a memo hit charges exactly what the reference path would have paid.
    let largest = points
        .iter()
        .filter(|(p, _)| p.accountable)
        .max_by_key(|(p, _)| p.n)
        .map(|(p, _)| p)
        .expect("accountable points swept");
    let measured = largest.obs.counter("crypto.sig_verifies");
    let predicted = largest.predicted_verifies;
    let ratio = measured as f64 / predicted as f64;
    let pass = (ratio - 1.0).abs() <= 0.10;
    eprintln!(
        "check: n={} accountable verifies measured/predicted = {ratio:.3} ({})",
        largest.n,
        if pass { "PASS" } else { "FAIL" }
    );
    // Check 2: the *actual* hash count must match the distinct-content
    // model to 0.1% — this is the memoization working, not a tuning knob.
    let memo_measured = largest.hooks.memo_misses;
    let memo_predicted = largest.predicted_memo_misses;
    let memo_ratio = memo_measured as f64 / memo_predicted as f64;
    let memo_pass = (memo_ratio - 1.0).abs() <= 0.001;
    eprintln!(
        "check: n={} accountable memo misses measured/predicted = {memo_ratio:.4} ({})",
        largest.n,
        if memo_pass { "PASS" } else { "FAIL" }
    );
    // Check 3: conservation — every logical verify is either a memo hit
    // or a real hash, at every point, exactly. (Honest runs have no
    // view-change traffic, the one path that verifies outside the cache.)
    let identity_pass = points
        .iter()
        .all(|(p, _)| p.hooks.memo_hits + p.hooks.memo_misses == p.hooks.sig_verifies);
    eprintln!(
        "check: memo hits + misses == sig verifies at every point ({})",
        if identity_pass { "PASS" } else { "FAIL" }
    );
    // Check 4 (--quick only): wall-clock budget on accountable n = 128.
    let wall_check = quick.then(|| {
        let p128 = points
            .iter()
            .map(|(p, _)| p)
            .find(|p| p.accountable && p.n == 128)
            .expect("quick sweep includes accountable n=128");
        let wall_pass = p128.wall_secs <= QUICK_WALL_BUDGET_SECS;
        eprintln!(
            "check: n=128 accountable quick wall {:.2}s within {QUICK_WALL_BUDGET_SECS:.0}s \
             budget ({})",
            p128.wall_secs,
            if wall_pass { "PASS" } else { "FAIL" }
        );
        (p128.wall_secs, wall_pass)
    });
    let all_pass = pass && memo_pass && identity_pass && wall_check.is_none_or(|(_, p)| p);

    let doc = Json::obj([
        ("bench", Json::str("profile")),
        ("quick", Json::Bool(quick)),
        ("rounds", Json::u64(rounds)),
        (
            "profiling_enabled",
            Json::Bool(prft_sim::obs::profiling_enabled()),
        ),
        (
            "points",
            Json::Arr(
                points
                    .iter()
                    .map(|(p, timers)| {
                        Json::obj([
                            ("n", Json::u64(p.n as u64)),
                            ("accountable", Json::Bool(p.accountable)),
                            ("rounds", Json::u64(p.rounds)),
                            ("wall_ms", Json::Num(p.wall_secs * 1e3)),
                            (
                                "sig_verifies",
                                Json::u64(p.obs.counter("crypto.sig_verifies")),
                            ),
                            ("predicted_sig_verifies", Json::u64(p.predicted_verifies)),
                            ("verify.memo_hit", Json::u64(p.hooks.memo_hits)),
                            ("verify.memo_miss", Json::u64(p.hooks.memo_misses)),
                            ("predicted_memo_misses", Json::u64(p.predicted_memo_misses)),
                            (
                                "clone_bytes",
                                Json::u64(p.obs.counter("engine.clone_bytes")),
                            ),
                            (
                                "events_dispatched",
                                Json::u64(p.obs.counter("engine.events_dispatched")),
                            ),
                            (
                                "peak_queue_depth",
                                Json::u64(p.obs.gauge("engine.peak_queue_depth")),
                            ),
                            ("timers", timers.clone()),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "check",
            Json::obj([
                ("n", Json::u64(largest.n as u64)),
                ("measured", Json::u64(measured)),
                ("predicted", Json::u64(predicted)),
                ("ratio", Json::Num(ratio)),
                ("pass", Json::Bool(pass)),
            ]),
        ),
        (
            "memo_check",
            Json::obj([
                ("n", Json::u64(largest.n as u64)),
                ("measured", Json::u64(memo_measured)),
                ("predicted", Json::u64(memo_predicted)),
                ("ratio", Json::Num(memo_ratio)),
                ("pass", Json::Bool(memo_pass)),
            ]),
        ),
        ("memo_identity_pass", Json::Bool(identity_pass)),
        (
            "wall_budget",
            match wall_check {
                Some((wall_secs, wall_pass)) => Json::obj([
                    ("n", Json::u64(128)),
                    ("wall_secs", Json::Num(wall_secs)),
                    ("budget_secs", Json::Num(QUICK_WALL_BUDGET_SECS)),
                    ("pass", Json::Bool(wall_pass)),
                ]),
                None => Json::Null,
            },
        ),
    ]);
    let rendered = doc.render_pretty();
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("error: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        None => println!("{rendered}"),
    }
    if all_pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// One measured point of the workload sweep.
struct WorkloadPoint {
    clients: usize,
    rounds: u64,
    events: u64,
    wall_secs: f64,
    stats: prft_lab::WorkloadRunStats,
}

/// Runs one open-loop client population against a fixed 8-replica
/// committee and measures engine throughput plus commit-latency
/// percentiles. The round budget scales with the offered load (2 txs per
/// client, 512-tx batches) so every population size gets enough committee
/// rounds to drain its mempool, plus fixed slack for ramp-up and the
/// retry tail.
fn run_workload_point(clients: usize) -> WorkloadPoint {
    const TXS_PER_CLIENT: u64 = 2;
    const BATCH: u64 = 512;
    let offered = clients as u64 * TXS_PER_CLIENT;
    let rounds = offered.div_ceil(BATCH) + 40;
    let spec = prft_lab::ScenarioSpec::new(format!("bench-wl-{clients}"), 8, rounds)
        .base_seed(0xb_10ad)
        .horizon(20_000_000)
        .workload(
            prft_lab::WorkloadSpec::steady(clients, 50)
                .txs_per_client(TXS_PER_CLIENT)
                .max_batch(BATCH as usize),
        );
    let t0 = Instant::now();
    let (sim, _outcome) =
        prft_lab::run_workload_sim(&spec, prft_lab::derive_seed(spec.base_seed, 0), |_| {});
    let wall_secs = t0.elapsed().as_secs_f64();
    WorkloadPoint {
        clients,
        rounds,
        events: sim.events_dispatched(),
        wall_secs,
        stats: prft_lab::WorkloadRunStats::collect(&sim),
    }
}

fn workload_bench(quick: bool, out: Option<&str>) -> ExitCode {
    let ns: &[usize] = if quick {
        &[100, 1000]
    } else {
        &[100, 300, 1000, 3000, 10_000]
    };
    let mut points: Vec<WorkloadPoint> = Vec::new();
    for &clients in ns {
        let p = run_workload_point(clients);
        eprintln!(
            "clients={:>6}: {:>9} events in {:>9.1}ms ({:>11.0} events/s), \
             {}/{} committed, latency p50={} p90={} p99={} ticks",
            p.clients,
            p.events,
            p.wall_secs * 1e3,
            p.events as f64 / p.wall_secs,
            p.stats.committed,
            p.stats.submitted,
            p.stats.latency.p50,
            p.stats.latency.p90,
            p.stats.latency.p99,
        );
        points.push(p);
    }
    // Check 1 (CI greps this line): conservation at every point.
    let conserve_pass = points
        .iter()
        .all(|p| p.stats.submitted == p.stats.committed + p.stats.dropped + p.stats.pending);
    eprintln!(
        "check: submitted == committed + dropped + pending at every point ({})",
        if conserve_pass { "PASS" } else { "FAIL" }
    );
    // Check 2: the largest population commits its whole offered load —
    // the round budget is sized for it, so leftovers mean a regression in
    // batching, retries, or the client path.
    let largest = points.last().expect("non-empty sweep");
    let drain_pass = largest.stats.committed == largest.stats.submitted;
    eprintln!(
        "check: clients={} committed {}/{} of offered load ({})",
        largest.clients,
        largest.stats.committed,
        largest.stats.submitted,
        if drain_pass { "PASS" } else { "FAIL" }
    );

    let doc = Json::obj([
        ("bench", Json::str("workload")),
        ("quick", Json::Bool(quick)),
        ("committee_n", Json::u64(8)),
        ("arrival", Json::str("steady interval=50")),
        (
            "points",
            Json::Arr(
                points
                    .iter()
                    .map(|p| {
                        Json::obj([
                            ("clients", Json::u64(p.clients as u64)),
                            ("rounds", Json::u64(p.rounds)),
                            ("events", Json::u64(p.events)),
                            ("wall_ms", Json::Num(p.wall_secs * 1e3)),
                            ("events_per_sec", Json::Num(p.events as f64 / p.wall_secs)),
                            ("submitted", Json::u64(p.stats.submitted)),
                            ("committed", Json::u64(p.stats.committed)),
                            ("dropped", Json::u64(p.stats.dropped)),
                            ("pending", Json::u64(p.stats.pending)),
                            ("retries", Json::u64(p.stats.retries)),
                            ("latency_p50", Json::u64(p.stats.latency.p50)),
                            ("latency_p90", Json::u64(p.stats.latency.p90)),
                            ("latency_p99", Json::u64(p.stats.latency.p99)),
                            ("latency_max", Json::u64(p.stats.latency.max)),
                            (
                                "mempool_peak_occupancy",
                                Json::u64(p.stats.mempool_peak_occupancy),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("conservation_pass", Json::Bool(conserve_pass)),
        (
            "drain_check",
            Json::obj([
                ("clients", Json::u64(largest.clients as u64)),
                ("committed", Json::u64(largest.stats.committed)),
                ("submitted", Json::u64(largest.stats.submitted)),
                ("pass", Json::Bool(drain_pass)),
            ]),
        ),
    ]);
    let rendered = doc.render_pretty();
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("error: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        None => println!("{rendered}"),
    }
    if conserve_pass && drain_pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// One late-divergence grid of the checkpoint bench: cells sharing a
/// long identical prefix, each diverging at a different tick near the
/// horizon (plus one cell that never diverges and forks at the horizon
/// pseudo-boundary).
struct CheckpointGrid {
    name: &'static str,
    specs: Vec<prft_lab::ScenarioSpec>,
    /// Divergence tick per cell (`None` for the never-diverging tail).
    ticks: Vec<Option<u64>>,
}

/// Round cadence for the checkpoint grids: Δ = 100 keeps an unbounded-
/// round n = 8 committee busy (but not event-dense) all the way to the
/// horizon, so prefix ticks translate into real simulation work.
const CHECKPOINT_DELTA: u64 = 100;

/// A busy-to-the-horizon checkpoint cell: the round budget is never
/// reached, so activity is horizon-bound.
fn checkpoint_cell(label: String, seed: u64, horizon: u64) -> prft_lab::ScenarioSpec {
    prft_lab::ScenarioSpec::new(label, 8, u64::MAX / 2)
        .base_seed(seed)
        .synchrony(prft_lab::Synchrony::Synchronous {
            delta: CHECKPOINT_DELTA,
        })
        .horizon(horizon)
}

/// The crash-divergence grid: one crash landing at `t` per cell (plus a
/// crash-free tail cell). Every cell's prefix below its own divergence
/// tick is empty, so cell k forks from cell k−1's capture and simulates
/// only its final slice.
fn crash_grid(horizon: u64, ticks: &[u64]) -> CheckpointGrid {
    use prft_lab::TimelineEvent;
    let mut specs: Vec<prft_lab::ScenarioSpec> = ticks
        .iter()
        .map(|&t| {
            checkpoint_cell(format!("crash@{t}"), 0xc4e2, horizon).at(t, TimelineEvent::Crash(7))
        })
        .collect();
    specs.push(checkpoint_cell(
        "no-divergence".to_string(),
        0xc4e2,
        horizon,
    ));
    CheckpointGrid {
        name: "crash-divergence",
        specs,
        ticks: ticks.iter().map(|&t| Some(t)).chain([None]).collect(),
    }
}

/// Tick every delay-divergence cell lifts its shared delay rule at: late
/// enough that forks across the live rule do real replay work, early
/// enough to leave a long shared suffix past it.
const DELAY_LIFT_TICK: u64 = 60_000;

/// The delay-divergence grid: every cell installs the same targeted
/// delay rule at t = 0 and lifts it at [`DELAY_LIFT_TICK`], then
/// diverges with a crash near the horizon (one cell never does). Forks
/// here cross a live delay rule, so the bench also times the
/// delay-replay path the equivalence suite pins for correctness — and
/// because the shared schedule ends at the lift, the crash cells can
/// only fork deep via **suffix captures**: the lift-only cell runs
/// first and captures at the hinted crash ticks, far past its own last
/// event.
fn delay_grid(horizon: u64, ticks: &[u64]) -> CheckpointGrid {
    use prft_lab::TimelineEvent;
    let base = |label: String| {
        checkpoint_cell(label, 0xde1a, horizon)
            .at(
                0,
                TimelineEvent::AddDelayRule {
                    from: Some(0),
                    to: None,
                    extra: 40,
                    window: u64::MAX,
                },
            )
            .at(
                DELAY_LIFT_TICK,
                TimelineEvent::RemoveDelayRule {
                    from: Some(0),
                    to: None,
                },
            )
    };
    let mut specs = vec![base("lift-only".to_string())];
    specs.extend(
        ticks
            .iter()
            .map(|&t| base(format!("crash@{t}")).at(t, TimelineEvent::Crash(7))),
    );
    CheckpointGrid {
        name: "delay-divergence",
        specs,
        ticks: [None]
            .into_iter()
            .chain(ticks.iter().map(|&t| Some(t)))
            .collect(),
    }
}

/// The workload-divergence grid: every cell drives the same open-loop
/// client population against the committee and diverges with a crash
/// near the horizon (plus a crash-free tail cell) — the
/// `Simulation<Actor>` twin of the crash grid, checkpointing clients'
/// in-flight/retry state along with the committee.
fn workload_grid(horizon: u64, ticks: &[u64]) -> CheckpointGrid {
    use prft_lab::TimelineEvent;
    let base = |label: String| {
        checkpoint_cell(label, 0x10adc, horizon).workload(
            prft_lab::WorkloadSpec::steady(30, 150)
                .txs_per_client(4)
                .max_batch(256),
        )
    };
    let mut specs: Vec<prft_lab::ScenarioSpec> = ticks
        .iter()
        .map(|&t| base(format!("crash@{t}")).at(t, TimelineEvent::Crash(7)))
        .collect();
    specs.push(base("no-divergence".to_string()));
    CheckpointGrid {
        name: "workload-divergence",
        specs,
        ticks: ticks.iter().map(|&t| Some(t)).chain([None]).collect(),
    }
}

/// One grid measured both ways.
struct CheckpointResult {
    grid: CheckpointGrid,
    records: Vec<prft_lab::RunRecord>,
    cold_wall: f64,
    warm_wall: f64,
    identical: bool,
    reuse: prft_lab::ReuseStats,
}

/// Runs one leg of a grid (cells in divergence order, one thread). The
/// warm leg installs the grid's capture hints first, exactly as the
/// batch runners do — suffix captures need them.
fn run_checkpoint_leg(
    specs: &[prft_lab::ScenarioSpec],
    store: Option<&prft_lab::CheckpointStore>,
) -> (Vec<prft_lab::RunRecord>, f64) {
    if let Some(store) = store {
        store.set_capture_hints_for(specs.iter());
    }
    let t0 = Instant::now();
    let records = specs
        .iter()
        .map(|s| prft_lab::run_one_with(s, prft_lab::derive_seed(s.base_seed, 0), store))
        .collect();
    (records, t0.elapsed().as_secs_f64())
}

/// Measures one grid cold and warm, best-of-`repeats` walls (records and
/// reuse counters are deterministic at one thread; only walls jitter).
fn measure_checkpoint_grid(grid: CheckpointGrid, repeats: u32) -> CheckpointResult {
    let mut cold_wall = f64::INFINITY;
    let mut warm_wall = f64::INFINITY;
    let mut cold_records = Vec::new();
    let mut warm_records = Vec::new();
    let mut reuse = prft_lab::ReuseStats::default();
    for _ in 0..repeats {
        let (records, wall) = run_checkpoint_leg(&grid.specs, None);
        cold_wall = cold_wall.min(wall);
        cold_records = records;
        let store = prft_lab::CheckpointStore::default();
        let (records, wall) = run_checkpoint_leg(&grid.specs, Some(&store));
        warm_wall = warm_wall.min(wall);
        warm_records = records;
        reuse = store.stats();
    }
    let identical = cold_records == warm_records;
    CheckpointResult {
        grid,
        records: cold_records,
        cold_wall,
        warm_wall,
        identical,
        reuse,
    }
}

fn checkpoint_bench(quick: bool, repeats: u32, out: Option<&str>) -> ExitCode {
    // Both modes share the horizon, so per-cell event counts are directly
    // comparable across quick and full runs (`prft-bench diff` relies on
    // that); quick just drops the middle divergence points.
    const HORIZON: u64 = 120_000;
    let divergence_ticks: &[u64] = if quick {
        &[100_000, 110_000, 115_000]
    } else {
        &[100_000, 105_000, 110_000, 115_000]
    };
    let grids = vec![
        measure_checkpoint_grid(crash_grid(HORIZON, divergence_ticks), repeats),
        measure_checkpoint_grid(delay_grid(HORIZON, divergence_ticks), repeats),
        measure_checkpoint_grid(workload_grid(HORIZON, divergence_ticks), repeats),
    ];
    let mut best_speedup = 0.0f64;
    for r in &grids {
        let cells = r.grid.specs.len() as f64;
        let speedup = r.cold_wall / r.warm_wall;
        best_speedup = best_speedup.max(speedup);
        eprintln!(
            "{}: {} cells, cold {:>7.1}ms ({:.1} cells/s), warm {:>7.1}ms ({:.1} cells/s), \
             {:.2}x — {} captured, {} forked, {} prefix ticks saved",
            r.grid.name,
            r.grid.specs.len(),
            r.cold_wall * 1e3,
            cells / r.cold_wall,
            r.warm_wall * 1e3,
            cells / r.warm_wall,
            speedup,
            r.reuse.created,
            r.reuse.forked,
            r.reuse.prefix_ticks_saved,
        );
    }
    // Check 1 (CI greps this line): forking must be invisible — warm and
    // cold records byte-equal at every cell of every grid.
    let identical = grids.iter().all(|r| r.identical);
    eprintln!(
        "check: warm records identical to cold at every cell ({})",
        if identical { "PASS" } else { "FAIL" }
    );
    // Check 2: at least one grid must clear 2x cells/sec warm over cold —
    // the acceptance bar for the warm-start machinery paying for itself.
    let speedup_pass = best_speedup >= 2.0;
    eprintln!(
        "check: best grid warm/cold = {best_speedup:.2}x >= 2.00x ({})",
        if speedup_pass { "PASS" } else { "FAIL" }
    );

    let doc = Json::obj([
        ("bench", Json::str("checkpoint")),
        ("quick", Json::Bool(quick)),
        ("repeats", Json::u64(repeats as u64)),
        ("committee_n", Json::u64(8)),
        ("horizon", Json::u64(HORIZON)),
        (
            "grids",
            Json::Arr(
                grids
                    .iter()
                    .map(|r| {
                        let cells = r.grid.specs.len() as f64;
                        Json::obj([
                            ("name", Json::str(r.grid.name)),
                            (
                                "cells",
                                Json::Arr(
                                    r.grid
                                        .specs
                                        .iter()
                                        .zip(&r.grid.ticks)
                                        .zip(&r.records)
                                        .map(|((spec, tick), record)| {
                                            Json::obj([
                                                ("label", Json::str(spec.label.clone())),
                                                (
                                                    "divergence_tick",
                                                    match tick {
                                                        Some(t) => Json::u64(*t),
                                                        None => Json::Null,
                                                    },
                                                ),
                                                (
                                                    "events_dispatched",
                                                    Json::u64(record.events_dispatched),
                                                ),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                            ("cold_wall_ms", Json::Num(r.cold_wall * 1e3)),
                            ("warm_wall_ms", Json::Num(r.warm_wall * 1e3)),
                            ("cells_per_sec_cold", Json::Num(cells / r.cold_wall)),
                            ("cells_per_sec_warm", Json::Num(cells / r.warm_wall)),
                            ("warm_over_cold", Json::Num(r.cold_wall / r.warm_wall)),
                            (
                                "reuse",
                                Json::obj([
                                    ("created", Json::u64(r.reuse.created)),
                                    ("forked", Json::u64(r.reuse.forked)),
                                    ("prefix_ticks_saved", Json::u64(r.reuse.prefix_ticks_saved)),
                                ]),
                            ),
                            ("identical", Json::Bool(r.identical)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "speedup_check",
            Json::obj([
                ("best_warm_over_cold", Json::Num(best_speedup)),
                ("threshold", Json::Num(2.0)),
                ("pass", Json::Bool(speedup_pass)),
            ]),
        ),
        ("identity_pass", Json::Bool(identical)),
    ]);
    let rendered = doc.render_pretty();
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &rendered) {
                eprintln!("error: writing {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote {path}");
        }
        None => println!("{rendered}"),
    }
    if identical && speedup_pass {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Field access helpers over the hand-rolled [`Json`] model (no serde in
/// the build environment, so the diff reads documents through these).
mod jx {
    use prft_lab::json::Json;

    pub fn get<'a>(j: &'a Json, key: &str) -> Option<&'a Json> {
        match j {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn arr(j: &Json) -> &[Json] {
        match j {
            Json::Arr(items) => items,
            _ => &[],
        }
    }

    pub fn u64_at(j: &Json, key: &str) -> Option<u64> {
        match get(j, key)? {
            Json::UInt(v) => Some(*v),
            _ => None,
        }
    }

    pub fn f64_at(j: &Json, key: &str) -> Option<f64> {
        match get(j, key)? {
            Json::Num(v) => Some(*v),
            Json::UInt(v) => Some(*v as f64),
            _ => None,
        }
    }

    pub fn str_at<'a>(j: &'a Json, key: &str) -> Option<&'a str> {
        match get(j, key)? {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn bool_at(j: &Json, key: &str) -> Option<bool> {
        match get(j, key)? {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Accumulates diff verdicts: every failed check prints its own line, and
/// one failure fails the run.
struct DiffChecks {
    failures: u32,
    checks: u32,
}

impl DiffChecks {
    fn new() -> Self {
        DiffChecks {
            failures: 0,
            checks: 0,
        }
    }

    /// Records one check; prints the line with a PASS/FAIL suffix.
    fn check(&mut self, pass: bool, line: String) {
        self.checks += 1;
        if !pass {
            self.failures += 1;
        }
        eprintln!("diff: {line} ({})", if pass { "PASS" } else { "FAIL" });
    }
}

/// `queue` regression rule: at every committee size both documents swept,
/// the calendar/heap throughput ratio must not have regressed by more
/// than the tolerance (wall-clock ratios jitter; the event counts backing
/// them are asserted equal by the bench itself).
fn diff_queue(current: &Json, baseline: &Json, tol: f64, checks: &mut DiffChecks) {
    for base_point in jx::arr(jx::get(baseline, "speedup").unwrap_or(&Json::Null)) {
        let Some(n) = jx::u64_at(base_point, "n") else {
            continue;
        };
        let Some(base_ratio) = jx::f64_at(base_point, "calendar_over_heap") else {
            continue;
        };
        let cur_ratio = jx::arr(jx::get(current, "speedup").unwrap_or(&Json::Null))
            .iter()
            .find(|p| jx::u64_at(p, "n") == Some(n))
            .and_then(|p| jx::f64_at(p, "calendar_over_heap"));
        let Some(cur_ratio) = cur_ratio else {
            continue; // n not in the current sweep (quick vs full)
        };
        let floor = base_ratio * (1.0 - tol);
        checks.check(
            cur_ratio >= floor,
            format!("queue n={n} calendar/heap {cur_ratio:.2} vs baseline {base_ratio:.2} (floor {floor:.2})"),
        );
    }
}

/// `profile` regression rule: the verify and memo counters are exact
/// deterministic functions of (n, accountable, rounds), so at every point
/// both documents measured they must match exactly — any drift means the
/// verification path changed behavior, not just speed.
fn diff_profile(current: &Json, baseline: &Json, checks: &mut DiffChecks) {
    for base_point in jx::arr(jx::get(baseline, "points").unwrap_or(&Json::Null)) {
        let (Some(n), Some(acc)) = (
            jx::u64_at(base_point, "n"),
            jx::bool_at(base_point, "accountable"),
        ) else {
            continue;
        };
        let cur_point = jx::arr(jx::get(current, "points").unwrap_or(&Json::Null))
            .iter()
            .find(|p| jx::u64_at(p, "n") == Some(n) && jx::bool_at(p, "accountable") == Some(acc));
        let Some(cur_point) = cur_point else {
            continue;
        };
        for field in ["sig_verifies", "verify.memo_miss", "events_dispatched"] {
            let base_v = jx::u64_at(base_point, field);
            let cur_v = jx::u64_at(cur_point, field);
            checks.check(
                cur_v == base_v,
                format!(
                    "profile n={n} acc={acc} {field} {} vs baseline {}",
                    cur_v.map_or("missing".into(), |v| v.to_string()),
                    base_v.map_or("missing".into(), |v| v.to_string()),
                ),
            );
        }
    }
    checks.check(
        jx::bool_at(current, "memo_identity_pass") == Some(true),
        "profile memo identity (hits + misses == verifies) holds".to_string(),
    );
}

/// `workload` regression rule: the client pipeline is fully deterministic,
/// so conservation counters and latency percentiles must match exactly at
/// every population both documents swept.
fn diff_workload(current: &Json, baseline: &Json, checks: &mut DiffChecks) {
    const FIELDS: [&str; 8] = [
        "submitted",
        "committed",
        "dropped",
        "pending",
        "retries",
        "latency_p50",
        "latency_p90",
        "latency_p99",
    ];
    for base_point in jx::arr(jx::get(baseline, "points").unwrap_or(&Json::Null)) {
        let Some(clients) = jx::u64_at(base_point, "clients") else {
            continue;
        };
        let cur_point = jx::arr(jx::get(current, "points").unwrap_or(&Json::Null))
            .iter()
            .find(|p| jx::u64_at(p, "clients") == Some(clients));
        let Some(cur_point) = cur_point else {
            continue;
        };
        for field in FIELDS {
            let base_v = jx::u64_at(base_point, field);
            let cur_v = jx::u64_at(cur_point, field);
            checks.check(
                cur_v == base_v,
                format!(
                    "workload clients={clients} {field} {} vs baseline {}",
                    cur_v.map_or("missing".into(), |v| v.to_string()),
                    base_v.map_or("missing".into(), |v| v.to_string()),
                ),
            );
        }
    }
}

/// `checkpoint` regression rule: per-cell event counts are deterministic
/// (quick and full share the horizon, so common cells compare exactly);
/// the warm/cold speedup is wall-clock and gets the tolerance band, and
/// the fork-identity flag must hold in the current run.
fn diff_checkpoint(current: &Json, baseline: &Json, tol: f64, checks: &mut DiffChecks) {
    for base_grid in jx::arr(jx::get(baseline, "grids").unwrap_or(&Json::Null)) {
        let Some(name) = jx::str_at(base_grid, "name") else {
            continue;
        };
        let cur_grid = jx::arr(jx::get(current, "grids").unwrap_or(&Json::Null))
            .iter()
            .find(|g| jx::str_at(g, "name") == Some(name));
        let Some(cur_grid) = cur_grid else {
            continue;
        };
        for base_cell in jx::arr(jx::get(base_grid, "cells").unwrap_or(&Json::Null)) {
            let Some(label) = jx::str_at(base_cell, "label") else {
                continue;
            };
            let cur_cell = jx::arr(jx::get(cur_grid, "cells").unwrap_or(&Json::Null))
                .iter()
                .find(|c| jx::str_at(c, "label") == Some(label));
            let Some(cur_cell) = cur_cell else {
                continue; // cell not in the current sweep (quick vs full)
            };
            let base_v = jx::u64_at(base_cell, "events_dispatched");
            let cur_v = jx::u64_at(cur_cell, "events_dispatched");
            checks.check(
                cur_v == base_v,
                format!(
                    "checkpoint {name}/{label} events_dispatched {} vs baseline {}",
                    cur_v.map_or("missing".into(), |v| v.to_string()),
                    base_v.map_or("missing".into(), |v| v.to_string()),
                ),
            );
        }
        if let (Some(base_speedup), Some(cur_speedup)) = (
            jx::f64_at(base_grid, "warm_over_cold"),
            jx::f64_at(cur_grid, "warm_over_cold"),
        ) {
            let floor = base_speedup * (1.0 - tol);
            checks.check(
                cur_speedup >= floor,
                format!(
                    "checkpoint {name} warm/cold {cur_speedup:.2}x vs baseline \
                     {base_speedup:.2}x (floor {floor:.2}x)"
                ),
            );
        }
    }
    checks.check(
        jx::bool_at(current, "identity_pass") == Some(true),
        "checkpoint warm records identical to cold".to_string(),
    );
}

/// `prft-bench diff <current> <baseline> [--tolerance F]`: regression
/// gate over two bench documents of the same kind.
fn diff_bench(current_path: &str, baseline_path: &str, tol: f64) -> ExitCode {
    let load = |path: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        Json::parse(&text).map_err(|e| format!("{path}: {e}"))
    };
    let (current, baseline) = match (load(current_path), load(baseline_path)) {
        (Ok(c), Ok(b)) => (c, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (cur_kind, base_kind) = (
        jx::str_at(&current, "bench").unwrap_or("?"),
        jx::str_at(&baseline, "bench").unwrap_or("?"),
    );
    if cur_kind != base_kind {
        eprintln!("error: bench kinds differ: {cur_kind} vs {base_kind}");
        return ExitCode::FAILURE;
    }
    let mut checks = DiffChecks::new();
    match cur_kind {
        "queue" => diff_queue(&current, &baseline, tol, &mut checks),
        "profile" => diff_profile(&current, &baseline, &mut checks),
        "workload" => diff_workload(&current, &baseline, &mut checks),
        "checkpoint" => diff_checkpoint(&current, &baseline, tol, &mut checks),
        other => {
            eprintln!("error: unknown bench kind: {other}");
            return ExitCode::FAILURE;
        }
    }
    eprintln!(
        "diff: {} of {} check(s) failed ({cur_kind}, tolerance {tol}, {current_path} vs \
         {baseline_path})",
        checks.failures, checks.checks
    );
    if checks.failures == 0 && checks.checks > 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: prft-bench queue [--quick] [--out FILE] [--repeats R]\n\
         \x20      prft-bench profile [--quick] [--out FILE]\n\
         \x20      prft-bench workload [--quick] [--out FILE]\n\
         \x20      prft-bench checkpoint [--quick] [--out FILE] [--repeats R]\n\
         \x20      prft-bench diff <current.json> <baseline.json> [--tolerance F]\n\
         \n\
         queue: sweeps committee sizes × event-queue backends over a\n\
         queue-bound flood workload and emits a BENCH_queue.json document\n\
         (schema: docs/PERFORMANCE.md). Exits non-zero if the calendar\n\
         backend is slower than the heap reference at the largest swept n.\n\
         \n\
         profile: runs honest pRFT committees (accountable × plain,\n\
         n = 16, 64, 128, 256, 512) and emits a BENCH_profile.json\n\
         document of logical verify counts, memo hits/misses, clone\n\
         bytes, and wall time per point (schema: docs/OBSERVABILITY.md).\n\
         Build with --features profiling to add per-scope wall-clock\n\
         timers. Exits non-zero if the logical verify count drifts >10%\n\
         from the analytic model, the hashed count (verify.memo_miss)\n\
         drifts >0.1% from the distinct-content model, memo hits + misses\n\
         != sig verifies anywhere, or (--quick) the accountable n = 128\n\
         point blows its wall-clock budget.\n\
         \n\
         workload: sweeps open-loop client populations (n = 100 … 10000)\n\
         against an 8-replica committee and emits a BENCH_workload.json\n\
         document of events/sec and commit-latency percentiles per point\n\
         (schema: docs/WORKLOAD.md). Exits non-zero if any point leaks\n\
         transactions or the largest population fails to commit its\n\
         offered load.\n\
         \n\
         checkpoint: measures checkpoint/fork warm starts on three\n\
         late-divergence grids — crash, delay with a late crash, and\n\
         open-loop workload (cells sharing a long prefix, diverging\n\
         near the horizon) — cold vs warm at one thread, and emits a\n\
         BENCH_checkpoint.json document of per-cell event counts, walls,\n\
         reuse accounting, and warm/cold speedup (schema:\n\
         docs/CHECKPOINTING.md). Exits non-zero if warm records differ\n\
         from cold anywhere or no grid reaches 2x cells/sec warm/cold.\n\
         \n\
         diff: compares a fresh bench JSON against a committed baseline\n\
         (BENCH_*.json): deterministic counters must match exactly at\n\
         every point both documents measured; wall-clock ratios (queue\n\
         calendar/heap, checkpoint warm/cold) must stay within the\n\
         tolerance of the baseline. Exits non-zero on any regression.\n\
         \n\
         options:\n\
         \x20 --quick        small sweep for CI smoke (queue: n = 16, 128;\n\
         \x20                profile: n = 8, 16, 128; workload: 100, 1000;\n\
         \x20                checkpoint: fewer divergence points, same\n\
         \x20                horizon)\n\
         \x20 --out FILE     write the JSON to FILE instead of stdout\n\
         \x20 --repeats R    best-of-R wall times per point (queue and\n\
         \x20                checkpoint, default 3)\n\
         \x20 --tolerance F  relative regression band for wall-clock\n\
         \x20                ratios in diff (default 0.35)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage();
    };
    match command.as_str() {
        "queue" => {
            let mut quick = false;
            let mut out: Option<String> = None;
            let mut repeats = 3u32;
            let mut it = args[1..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--quick" => quick = true,
                    "--out" => match it.next() {
                        Some(path) => out = Some(path.clone()),
                        None => return usage(),
                    },
                    "--repeats" => match it.next().and_then(|r| r.parse().ok()) {
                        Some(r) if r > 0 => repeats = r,
                        _ => return usage(),
                    },
                    _ => return usage(),
                }
            }
            queue_bench(quick, repeats, out.as_deref())
        }
        "profile" => {
            let mut quick = false;
            let mut out: Option<String> = None;
            let mut it = args[1..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--quick" => quick = true,
                    "--out" => match it.next() {
                        Some(path) => out = Some(path.clone()),
                        None => return usage(),
                    },
                    _ => return usage(),
                }
            }
            profile_bench(quick, out.as_deref())
        }
        "workload" => {
            let mut quick = false;
            let mut out: Option<String> = None;
            let mut it = args[1..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--quick" => quick = true,
                    "--out" => match it.next() {
                        Some(path) => out = Some(path.clone()),
                        None => return usage(),
                    },
                    _ => return usage(),
                }
            }
            workload_bench(quick, out.as_deref())
        }
        "checkpoint" => {
            let mut quick = false;
            let mut out: Option<String> = None;
            let mut repeats = 3u32;
            let mut it = args[1..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--quick" => quick = true,
                    "--out" => match it.next() {
                        Some(path) => out = Some(path.clone()),
                        None => return usage(),
                    },
                    "--repeats" => match it.next().and_then(|r| r.parse().ok()) {
                        Some(r) if r > 0 => repeats = r,
                        _ => return usage(),
                    },
                    _ => return usage(),
                }
            }
            checkpoint_bench(quick, repeats, out.as_deref())
        }
        "diff" => {
            let (Some(current), Some(baseline)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            let mut tol = 0.35f64;
            let mut it = args[3..].iter();
            while let Some(arg) = it.next() {
                match arg.as_str() {
                    "--tolerance" => match it.next().and_then(|t| t.parse().ok()) {
                        Some(t) if (0.0..1.0).contains(&t) => tol = t,
                        _ => return usage(),
                    },
                    _ => return usage(),
                }
            }
            diff_bench(current, baseline, tol)
        }
        "--help" | "-h" | "help" => {
            usage();
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
