//! **Ablation**: what the Reveal phase buys and what it costs.
//!
//! pRFT's distinguishing design choice is carrying accountability inside
//! the protocol: the Reveal phase cross-publishes every commit certificate
//! (the `O(κ·n⁴)` bits of Table 3) so honest players can construct
//! Proof-of-Fraud. This ablation runs pRFT with the Reveal phase removed
//! (finalize straight from the commit quorum) and measures both sides of
//! the trade:
//!
//! * **cost** — bytes per decision, with vs. without, across n;
//! * **security** — the fork collusion attack: with Reveal the deviators
//!   burn (deviation strictly dominated, DSIC); without it they walk away
//!   unpunished. The attack pair is the registered
//!   `ablation-accountability` scenario.
//!
//! Everything runs through the `prft-lab` batch engine.
//!
//! Run: `cargo run -p prft-bench --release --bin ablation_accountability`

use prft_bench::{fmt, verdict};
use prft_lab::{BatchRunner, ScenarioSpec};
use prft_metrics::AsciiTable;

fn honest_cost_spec(n: usize, accountable: bool) -> ScenarioSpec {
    let tag = if accountable { "full" } else { "ablated" };
    ScenarioSpec::new(format!("n={n} {tag}"), n, 3)
        .base_seed(7)
        .accountable(accountable)
}

fn main() {
    println!("Ablation — pRFT with and without the Reveal/PoF phase\n");
    let runner = BatchRunner::all_cores();

    // ---- Cost side: honest runs with and without Reveal, across n ----
    let cost_specs: Vec<ScenarioSpec> = [8usize, 16, 32]
        .into_iter()
        .flat_map(|n| [honest_cost_spec(n, true), honest_cost_spec(n, false)])
        .collect();
    let cost_reports = runner.run_grid(&cost_specs, 1);

    let mut cost = AsciiTable::new(vec![
        "n",
        "msgs/decision (full)",
        "msgs (ablated)",
        "bytes/decision (full)",
        "bytes (ablated)",
        "byte savings",
    ])
    .with_title("Cost of accountability (honest runs)");
    for pair in cost_reports.chunks(2) {
        let per_decision = |r: &prft_lab::BatchReport| {
            let decided = r.min_final_height.mean.max(1.0);
            (
                r.total_messages.mean / decided,
                r.total_bytes.mean / decided,
            )
        };
        let (m_full, b_full) = per_decision(&pair[0]);
        let (m_abl, b_abl) = per_decision(&pair[1]);
        cost.row(vec![
            pair[0].n.to_string(),
            fmt(m_full),
            fmt(m_abl),
            fmt(b_full),
            fmt(b_abl),
            format!("{:.1}×", b_full / b_abl),
        ]);
    }
    println!("{cost}\n");

    // ---- Security side: the fork attack, full vs ablated ----
    let attack = prft_lab::find("ablation-accountability").expect("registered");
    let attack_reports = runner.run_grid(&attack.specs, 1);

    let mut sec = AsciiTable::new(vec![
        "variant",
        "fork prevented",
        "deviators burned",
        "blocks finalized",
        "incentive guarantee",
    ])
    .with_title("Security under the θ=1 fork collusion (byz leader + 3 rational)");
    let full = &attack_reports[0];
    let ablated = &attack_reports[1];
    sec.row(vec![
        "pRFT (full)".into(),
        verdict(full.agreement_rate == 1.0),
        format!("{:.0}", full.burned_players.mean),
        format!("{:.0}", full.min_final_height.mean),
        "DSIC: deviation costs −L".into(),
    ]);
    sec.row(vec![
        "pRFT − Reveal (ablated)".into(),
        verdict(ablated.agreement_rate == 1.0),
        format!("{:.0}", ablated.burned_players.mean),
        format!("{:.0}", ablated.min_final_height.mean),
        "indifference only: deviation is free".into(),
    ]);
    println!("{sec}\n");

    let burned_full = full.burned_players.mean;
    let blocks_full = full.min_final_height.mean;
    let burned_abl = ablated.burned_players.mean;
    let blocks_abl = ablated.min_final_height.mean;
    println!(
        "Reading: quorum intersection alone (τ = n − t0 in Claim 1's window)\n\
         keeps *agreement* even without the Reveal phase — but accountability\n\
         is gone: the same collusion that burns {burned_full:.0} deposits (and costs the\n\
         attackers only one aborted round: {blocks_full:.0} blocks still land) walks away\n\
         with {burned_abl:.0} burns under the ablation, and without Expose/equivocation\n\
         triggers the attacked round simply stalls ({blocks_abl:.0} blocks). The reveal\n\
         bytes are the price of turning 'deviation cannot succeed' into\n\
         'deviation cannot pay' — the step from Nash-style to dominant-\n\
         strategy security that is the paper's core design argument."
    );
}
