//! **Ablation**: what the Reveal phase buys and what it costs.
//!
//! pRFT's distinguishing design choice is carrying accountability inside
//! the protocol: the Reveal phase cross-publishes every commit certificate
//! (the `O(κ·n⁴)` bits of Table 3) so honest players can construct
//! Proof-of-Fraud. This ablation runs pRFT with the Reveal phase removed
//! (finalize straight from the commit quorum) and measures both sides of
//! the trade:
//!
//! * **cost** — bytes per decision, with vs. without, across n;
//! * **security** — the fork collusion attack: with Reveal the deviators
//!   burn (deviation strictly dominated, DSIC); without it they walk away
//!   unpunished (deviation free: only the weaker Nash-style indifference
//!   remains — exactly the regression to TRAP-era guarantees the paper
//!   argues against).
//!
//! Run: `cargo run -p prft-bench --release --bin ablation_accountability`

use prft_adversary::{blackboard, EquivocatingLeader, ForkColluder};
use prft_bench::{fmt, verdict};
use prft_core::analysis::analyze;
use prft_core::{Config, Harness, NetworkChoice};
use prft_metrics::AsciiTable;
use prft_sim::SimTime;
use prft_types::{NodeId, Round};
use std::collections::HashSet;

const HORIZON: SimTime = SimTime(2_000_000);

fn honest_cost(n: usize, accountable: bool) -> (f64, f64) {
    let cfg = Config::for_committee(n)
        .with_accountability(accountable)
        .with_max_rounds(3);
    let mut sim = Harness::new(n, 7)
        .config(cfg)
        .network(NetworkChoice::Synchronous { delta: SimTime(10) })
        .build();
    sim.run_until(HORIZON);
    let decided = sim.node(NodeId(0)).chain().final_height().max(1) as f64;
    (
        sim.meter().total_messages() as f64 / decided,
        sim.meter().total_bytes() as f64 / decided,
    )
}

fn fork_attack(accountable: bool) -> (bool, usize, u64) {
    let n = 9;
    let board = blackboard();
    let b_group: HashSet<NodeId> = [NodeId(7), NodeId(8)].into_iter().collect();
    let cfg = Config::for_committee(n)
        .with_accountability(accountable)
        .with_max_rounds(3);
    let mut h = Harness::new(n, 5)
        .config(cfg)
        .network(NetworkChoice::Synchronous { delta: SimTime(10) })
        .with_behavior(
            NodeId(0),
            Box::new(
                EquivocatingLeader::new(board.clone(), b_group.clone(), n).only_rounds([Round(0)]),
            ),
        );
    for i in 1..=3 {
        h = h.with_behavior(
            NodeId(i),
            Box::new(ForkColluder::new(board.clone(), b_group.clone(), n)),
        );
    }
    let mut sim = h.build();
    sim.run_until(HORIZON);
    let r = analyze(&sim);
    (r.agreement, r.burned.len(), r.min_final_height)
}

fn main() {
    println!("Ablation — pRFT with and without the Reveal/PoF phase\n");

    let mut cost = AsciiTable::new(vec![
        "n",
        "msgs/decision (full)",
        "msgs (ablated)",
        "bytes/decision (full)",
        "bytes (ablated)",
        "byte savings",
    ])
    .with_title("Cost of accountability (honest runs)");
    for n in [8usize, 16, 32] {
        let (m_full, b_full) = honest_cost(n, true);
        let (m_abl, b_abl) = honest_cost(n, false);
        cost.row(vec![
            n.to_string(),
            fmt(m_full),
            fmt(m_abl),
            fmt(b_full),
            fmt(b_abl),
            format!("{:.1}×", b_full / b_abl),
        ]);
    }
    println!("{cost}\n");

    let mut sec = AsciiTable::new(vec![
        "variant",
        "fork prevented",
        "deviators burned",
        "blocks finalized",
        "incentive guarantee",
    ])
    .with_title("Security under the θ=1 fork collusion (byz leader + 3 rational)");
    let (agree_full, burned_full, blocks_full) = fork_attack(true);
    let (agree_abl, burned_abl, blocks_abl) = fork_attack(false);
    sec.row(vec![
        "pRFT (full)".into(),
        verdict(agree_full),
        burned_full.to_string(),
        blocks_full.to_string(),
        "DSIC: deviation costs −L".into(),
    ]);
    sec.row(vec![
        "pRFT − Reveal (ablated)".into(),
        verdict(agree_abl),
        burned_abl.to_string(),
        blocks_abl.to_string(),
        "indifference only: deviation is free".into(),
    ]);
    println!("{sec}\n");

    println!(
        "Reading: quorum intersection alone (τ = n − t0 in Claim 1's window)\n\
         keeps *agreement* even without the Reveal phase — but accountability\n\
         is gone: the same collusion that burns {burned_full} deposits (and costs the\n\
         attackers only one aborted round: {blocks_full} blocks still land) walks away\n\
         with {burned_abl} burns under the ablation, and without Expose/equivocation\n\
         triggers the attacked round simply stalls ({blocks_abl} blocks). The reveal\n\
         bytes are the price of turning 'deviation cannot succeed' into\n\
         'deviation cannot pay' — the step from Nash-style to dominant-\n\
         strategy security that is the paper's core design argument."
    );
}
