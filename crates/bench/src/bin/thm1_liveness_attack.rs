//! **E4 — Theorem 1**: under θ=3, rational consensus is impossible for
//! `⌈n/3⌉ ≤ k+t ≤ ⌈n/2⌉−1` — the coalition plays `π_abs`, which is
//! indistinguishable from crash faults, so no accountable protocol can
//! punish it, and `U(π_abs) = α/(1−δ) > 0 = U(π_0)`.
//!
//! The abstention sweep is the registered `liveness-attack` scenario run
//! through the `prft-lab` batch engine (multi-seed, all cores); the pBFT
//! comparison column fans through the same thread pool.
//!
//! Run: `cargo run -p prft-bench --release --bin thm1_liveness_attack`

use prft_baselines::pbft;
use prft_bench::{fmt, verdict};
use prft_game::{analytic, UtilityParams};
use prft_lab::BatchRunner;
use prft_metrics::AsciiTable;
use prft_sim::{SimTime, Simulation};
use prft_types::{Digest, NodeId};

const HORIZON: SimTime = SimTime(400_000);
const SEEDS: u64 = 8;

/// pBFT under the same abstention coalition (abstention ≡ crash for
/// message purposes): blocks committed by the survivors.
fn pbft_blocks(n: usize, coalition: usize, seed: u64) -> f64 {
    let cfg = pbft::PbftConfig::new(n, 6);
    let (replicas, _) = pbft::committee(&cfg, 3, &vec![pbft::PbftMode::Honest; n]);
    let mut sim = Simulation::new(
        replicas,
        Box::new(prft_net::PartiallySynchronousNet::new(
            SimTime(1_000),
            SimTime(10),
        )),
        seed,
    );
    for i in 0..coalition {
        sim.crash(NodeId(n - 1 - i));
    }
    sim.run_until(HORIZON);
    let logs: Vec<Vec<Digest>> = (0..n - coalition)
        .map(|i| sim.node(NodeId(i)).log())
        .collect();
    logs.iter().map(Vec::len).max().unwrap_or(0) as f64
}

fn main() {
    println!("E4 — Theorem 1: θ=3 abstention kills liveness unpunishably\n");
    let scenario = prft_lab::find("liveness-attack").expect("registered");
    let n = scenario.specs[0].n;
    let params = UtilityParams::default();
    let runner = BatchRunner::all_cores();

    let reports = runner.run_grid(&scenario.specs, SEEDS);
    let pbft_cols: Vec<f64> = runner.map(&scenario.specs, |_, spec| {
        let coalition = spec
            .roles
            .iter()
            .filter(|(_, r)| matches!(r, prft_lab::Role::Abstain))
            .count();
        (0..SEEDS)
            .map(|i| pbft_blocks(n, coalition, prft_lab::derive_seed(spec.base_seed, i)))
            .sum::<f64>()
            / SEEDS as f64
    });

    let mut table = AsciiTable::new(vec![
        "k+t",
        "regime (⌈n/3⌉..⌈n/2⌉−1)",
        "pRFT blocks",
        "pBFT blocks",
        "anyone burned",
        "U(π_abs|θ=3)",
        "U(π_0)",
    ])
    .with_title(&format!(
        "n = {n}; coalition abstains; {SEEDS} seeds per point; utilities discounted (δ = {})",
        params.delta
    ));

    for (report, pbft_mean) in reports.iter().zip(&pbft_cols) {
        let coalition: usize = report
            .label
            .trim_start_matches("k+t=")
            .parse()
            .expect("label");
        let in_regime = analytic::in_impossibility_regime(n, coalition, 0);
        // The coalition's measured utility: the last player, averaged.
        let u_abs = if coalition > 0 {
            report.utilities[n - 1].mean
        } else {
            0.0
        };
        table.row(vec![
            coalition.to_string(),
            verdict(in_regime),
            fmt(report.min_final_height.mean),
            fmt(*pbft_mean),
            verdict(report.burned_players.mean > 0.0),
            fmt(u_abs),
            "0".into(),
        ]);
    }
    println!("{table}\n");

    println!(
        "Analytic check: U(π_abs, θ=3) = α/(1−δ) = {}",
        fmt(analytic::theorem1_abstain_utility(
            params.alpha,
            params.delta
        ))
    );
    println!(
        "As Theorem 1 predicts: once the coalition exceeds the quorum slack,\n\
         no blocks confirm (σ_NP) on *either* protocol, nobody is ever burned\n\
         (abstention ≡ crash: D(π_abs, σ) = 0), and the coalition's realized\n\
         utility is positive while honest play yields 0 — so π_abs dominates\n\
         and (t,k)-eventual liveness is unachievable in this regime."
    );
}
