//! **E4 — Theorem 1**: under θ=3, rational consensus is impossible for
//! `⌈n/3⌉ ≤ k+t ≤ ⌈n/2⌉−1` — the coalition plays `π_abs`, which is
//! indistinguishable from crash faults, so no accountable protocol can
//! punish it, and `U(π_abs) = α/(1−δ) > 0 = U(π_0)`.
//!
//! We sweep the abstaining-coalition size on both pRFT and pBFT and
//! measure throughput, penalties, and the coalition's θ=3 utility.
//!
//! Run: `cargo run -p prft-bench --release --bin thm1_liveness_attack`

use prft_adversary::Abstain;
use prft_baselines::pbft;
use prft_bench::{classify_run, fmt, measure_utility, verdict};
use prft_core::analysis::analyze;
use prft_core::{Harness, NetworkChoice};
use prft_game::{analytic, SystemState, Theta, UtilityParams};
use prft_metrics::AsciiTable;
use prft_sim::{SimTime, Simulation};
use prft_types::{Digest, NodeId};

const HORIZON: SimTime = SimTime(400_000);

fn prft_run(n: usize, coalition: usize) -> (f64, bool, f64) {
    let mut h = Harness::new(n, 31)
        .network(NetworkChoice::PartiallySynchronous {
            gst: SimTime(1_000),
            delta: SimTime(10),
        })
        .max_rounds(6);
    for i in 0..coalition {
        h = h.with_behavior(NodeId(n - 1 - i), Box::new(Abstain));
    }
    let mut sim = h.build();
    sim.run_until(HORIZON);
    let r = analyze(&sim);
    let params = UtilityParams::default();
    let state = classify_run(&sim, &[]);
    let utility = if coalition > 0 {
        measure_utility(&sim, NodeId(n - 1), Theta::LivenessAttacking, &params, &[], 6)
    } else {
        0.0
    };
    let penalized = !r.burned.is_empty();
    let live = state != SystemState::NoProgress;
    let _ = live;
    (r.min_final_height as f64, penalized, utility)
}

fn pbft_run(n: usize, coalition: usize) -> (f64, bool) {
    let cfg = pbft::PbftConfig::new(n, 6);
    let (replicas, _) = pbft::committee(&cfg, 3, &vec![pbft::PbftMode::Honest; n]);
    let mut sim = Simulation::new(
        replicas,
        Box::new(prft_net::PartiallySynchronousNet::new(
            SimTime(1_000),
            SimTime(10),
        )),
        5,
    );
    // Abstention ≡ crash for message purposes.
    for i in 0..coalition {
        sim.crash(NodeId(n - 1 - i));
    }
    sim.run_until(HORIZON);
    let logs: Vec<Vec<Digest>> = (0..n - coalition)
        .map(|i| sim.node(NodeId(i)).log())
        .collect();
    let height = logs.iter().map(Vec::len).max().unwrap_or(0);
    (height as f64, false)
}

fn main() {
    println!("E4 — Theorem 1: θ=3 abstention kills liveness unpunishably\n");
    let n = 12; // pRFT: t0 = 2, quorum 10; regime: 4 ≤ k+t ≤ 5
    let params = UtilityParams::default();

    let mut table = AsciiTable::new(vec![
        "k+t",
        "regime (⌈n/3⌉..⌈n/2⌉−1)",
        "pRFT blocks",
        "pBFT blocks",
        "anyone burned",
        "U(π_abs|θ=3)",
        "U(π_0)",
    ])
    .with_title(&format!(
        "n = {n}; coalition abstains; utilities discounted (δ = {})",
        params.delta
    ));

    for coalition in [0usize, 1, 2, 3, 4, 5, 6] {
        let in_regime = analytic::in_impossibility_regime(n, coalition, 0);
        let (prft_blocks, penalized, u_abs) = prft_run(n, coalition);
        let (pbft_blocks, _) = pbft_run(n, coalition);
        table.row(vec![
            coalition.to_string(),
            verdict(in_regime),
            fmt(prft_blocks),
            fmt(pbft_blocks),
            verdict(penalized),
            fmt(u_abs),
            "0".into(),
        ]);
    }
    println!("{table}\n");

    println!("Analytic check: U(π_abs, θ=3) = α/(1−δ) = {}", fmt(
        analytic::theorem1_abstain_utility(params.alpha, params.delta)
    ));
    println!(
        "As Theorem 1 predicts: once the coalition exceeds the quorum slack,\n\
         no blocks confirm (σ_NP) on *either* protocol, nobody is ever burned\n\
         (abstention ≡ crash: D(π_abs, σ) = 0), and the coalition's realized\n\
         utility is positive while honest play yields 0 — so π_abs dominates\n\
         and (t,k)-eventual liveness is unachievable in this regime."
    );
}
