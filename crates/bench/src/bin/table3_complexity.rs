//! **E3 — Table 3 / "Figure 3"**: message complexity, message size, and
//! accountability for pBFT, HotStuff, Polygraph-style accountable BFT, and
//! pRFT, measured by sweeping the committee size and fitting power laws.
//!
//! The paper's table (from Civit et al.):
//!
//! | protocol | msgs | size | accountability |
//! |---|---|---|---|
//! | pBFT | O(n³) | O(κ·n⁴) | ✗ |
//! | HotStuff | O(n²) | O(κ·n³) | ✗ |
//! | Polygraph | O(n³) | O(κ·n⁴) | ✓ |
//! | pRFT | O(n³) | O(κ·n⁴) | ✓ |
//!
//! The pRFT column is the registered `committee-scaling` scenario; the
//! baseline columns fan through the same `prft-lab` thread pool. We measure
//! the normal-case per-decision cost. Absolute exponents land one power of
//! n below the table across the board (the paper counts view change
//! cascades / per-signature transfers); what the experiment checks is the
//! paper's *ranking*: HotStuff ≪ pBFT < Polygraph ≈ pRFT, with the
//! accountable protocols paying exactly one extra factor of n in bits for
//! the certificate cross-exchange.
//!
//! Run: `cargo run -p prft-bench --release --bin table3_complexity`

use prft_baselines::{hotstuff, pbft};
use prft_bench::fmt;
use prft_lab::BatchRunner;
use prft_metrics::{fit_power_law, AsciiTable};
use prft_sim::{SimTime, Simulation};
use prft_types::NodeId;

const NS: [usize; 4] = [4, 8, 16, 32];
const ROUNDS: u64 = 3;
const HORIZON: SimTime = SimTime(5_000_000);

#[derive(Clone, Copy)]
enum Baseline {
    Pbft { accountable: bool },
    HotStuff,
}

fn baseline_cost(kind: Baseline, n: usize) -> (f64, f64) {
    match kind {
        Baseline::Pbft { accountable } => {
            let mut cfg = pbft::PbftConfig::new(n, ROUNDS);
            if accountable {
                cfg = cfg.accountable();
            }
            let (replicas, _) = pbft::committee(&cfg, 1, &vec![pbft::PbftMode::Honest; n]);
            let mut sim = Simulation::new(
                replicas,
                Box::new(prft_net::SynchronousNet::new(SimTime(10))),
                7,
            );
            sim.run_until(HORIZON);
            let decided = sim.node(NodeId(0)).log().len().max(1) as f64;
            (
                sim.meter().total_messages() as f64 / decided,
                sim.meter().total_bytes() as f64 / decided,
            )
        }
        Baseline::HotStuff => {
            let cfg = hotstuff::HsConfig::new(n, ROUNDS);
            let mut sim = Simulation::new(
                hotstuff::committee(&cfg, 11),
                Box::new(prft_net::SynchronousNet::new(SimTime(10))),
                7,
            );
            sim.run_until(HORIZON);
            let decided = sim.node(NodeId(0)).log().len().max(1) as f64;
            (
                sim.meter().total_messages() as f64 / decided,
                sim.meter().total_bytes() as f64 / decided,
            )
        }
    }
}

fn main() {
    println!("E3 — Table 3: message complexity & size (normal case, per decision)\n");
    let runner = BatchRunner::all_cores();

    // pRFT column: the registered committee-scaling scenario, one seed per
    // grid point (the normal case is deterministic enough; the scenario is
    // also runnable standalone with many seeds via `prft-lab run`).
    let scaling = prft_lab::find("committee-scaling").expect("registered");
    let prft_costs: Vec<(f64, f64)> = runner
        .run_grid(&scaling.specs, 1)
        .iter()
        .map(|report| {
            let decided = report.min_final_height.mean.max(1.0);
            (
                report.total_messages.mean / decided,
                report.total_bytes.mean / decided,
            )
        })
        .collect();

    // Baseline columns fan through the same pool.
    let cells: Vec<(Baseline, usize)> = [
        Baseline::Pbft { accountable: false },
        Baseline::HotStuff,
        Baseline::Pbft { accountable: true },
    ]
    .into_iter()
    .flat_map(|kind| NS.iter().map(move |&n| (kind, n)))
    .collect();
    let baseline_costs = runner.map(&cells, |_, &(kind, n)| baseline_cost(kind, n));

    type ProtocolRow<'a> = (&'a str, Vec<(f64, f64)>, bool, &'a str, &'a str);
    let protocols: Vec<ProtocolRow> = vec![
        (
            "pBFT",
            baseline_costs[0..4].to_vec(),
            false,
            "O(n³)",
            "O(κ·n⁴)",
        ),
        (
            "HotStuff",
            baseline_costs[4..8].to_vec(),
            false,
            "O(n²)",
            "O(κ·n³)",
        ),
        (
            "Polygraph",
            baseline_costs[8..12].to_vec(),
            true,
            "O(n³)",
            "O(κ·n⁴)",
        ),
        ("pRFT", prft_costs, true, "O(n³)", "O(κ·n⁴)"),
    ];

    let mut raw = AsciiTable::new(vec!["protocol", "n", "msgs/decision", "bytes/decision"])
        .with_title("Raw measurements");
    let mut results = Vec::new();
    for (name, costs, accountable, paper_msgs, paper_bytes) in &protocols {
        let mut msg_samples = Vec::new();
        let mut byte_samples = Vec::new();
        for (&n, &(msgs, bytes)) in NS.iter().zip(costs.iter()) {
            raw.row(vec![name.to_string(), n.to_string(), fmt(msgs), fmt(bytes)]);
            msg_samples.push((n as f64, msgs));
            byte_samples.push((n as f64, bytes));
        }
        let mfit = fit_power_law(&msg_samples);
        let bfit = fit_power_law(&byte_samples);
        results.push((
            *name,
            mfit,
            bfit,
            *accountable,
            *paper_msgs,
            *paper_bytes,
            byte_samples.last().unwrap().1,
        ));
    }
    println!("{raw}\n");

    let mut table = AsciiTable::new(vec![
        "protocol",
        "msgs ~ n^e",
        "bytes ~ n^e",
        "R²",
        "acct",
        "paper msgs",
        "paper size",
    ])
    .with_title("Fitted exponents vs paper Table 3");
    for (name, mfit, bfit, acct, pm, pb, _) in &results {
        table.row(vec![
            name.to_string(),
            format!("n^{:.2}", mfit.exponent),
            format!("n^{:.2}", bfit.exponent),
            format!("{:.3}", bfit.r_squared),
            prft_bench::verdict(*acct),
            pm.to_string(),
            pb.to_string(),
        ]);
    }
    println!("{table}\n");

    // Ranking checks (the shape the paper claims).
    let bytes_at = |name: &str| {
        results
            .iter()
            .find(|r| r.0 == name)
            .map(|r| r.6)
            .expect("protocol measured")
    };
    let exp_at = |name: &str| results.iter().find(|r| r.0 == name).unwrap().2.exponent;
    println!("Shape checks at n = {}:", NS[NS.len() - 1]);
    println!(
        "  HotStuff cheapest in bits: {} ({} < {})",
        prft_bench::verdict(bytes_at("HotStuff") < bytes_at("pBFT")),
        fmt(bytes_at("HotStuff")),
        fmt(bytes_at("pBFT")),
    );
    println!(
        "  Accountability costs ~ one factor n: pRFT/pBFT byte-exponent gap = {:.2} (expect ≈ 1)",
        exp_at("pRFT") - exp_at("pBFT"),
    );
    println!(
        "  pRFT ≈ Polygraph (accountable peers): exponent gap = {:.2} (expect ≈ 0)",
        (exp_at("pRFT") - exp_at("Polygraph")).abs(),
    );
    println!(
        "  pRFT pays ≤ {:.1}× Polygraph bits at n = 32 — at par with the accountable SOTA",
        bytes_at("pRFT") / bytes_at("Polygraph"),
    );
}
