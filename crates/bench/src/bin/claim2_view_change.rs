//! **E11 — Claim 2**: the view-change sub-protocol satisfies
//!
//! * **Consistency** — if an honest player commits to a view change in
//!   round r, no honest player reaches agreement in r (across seeds and
//!   adversarial pre-GST schedules);
//! * **Robustness** — the byzantine set alone cannot force a view change
//!   under an honest leader.
//!
//! Consistency is the engine's built-in `vc_consistent` observable swept
//! over 20 seeds; robustness is the registered `view-change-churn`
//! scenario. Both run through the `prft-lab` batch engine.
//!
//! Run: `cargo run -p prft-bench --release --bin claim2_view_change`

use prft_bench::verdict;
use prft_lab::{BatchRunner, ScenarioSpec, Synchrony};
use prft_metrics::AsciiTable;

fn main() {
    println!("E11 — Claim 2: view-change Consistency and Robustness\n");
    let n = 9; // t0 = 2
    let runner = BatchRunner::all_cores();

    // ---- Consistency across adversarial pre-GST schedules ----
    let consistency_spec = ScenarioSpec::new("consistency", n, 6)
        .base_seed(0)
        .synchrony(Synchrony::PartiallySynchronous {
            gst: 2_000,
            delta: 10,
        })
        .horizon(2_000_000);
    let consistency = runner.run(&consistency_spec, 20);
    let consistency_ok = consistency.vc_consistent_rate == 1.0 && consistency.agreement_rate == 1.0;
    let checked_rounds: f64 = consistency.view_changes.mean * consistency.seeds as f64;

    // ---- Robustness: byzantine-only view-change pressure ----
    let churn = prft_lab::find("view-change-churn").expect("registered");
    let reports = runner.run_grid(&churn.specs, 8);

    let mut table = AsciiTable::new(vec![
        "byzantine (silent + VC-hungry)",
        "honest view changes",
        "blocks finalized",
        "agreement",
        "expected",
    ])
    .with_title(&format!(
        "Robustness (n = {n}, t0 = 2, honest leaders, 8 seeds)"
    ));
    for report in &reports {
        let byz: usize = report
            .label
            .trim_start_matches("byz=")
            .parse()
            .expect("label");
        let expected = if byz <= 2 {
            "no VC, progress"
        } else {
            "VC (quorum starved)"
        };
        table.row(vec![
            byz.to_string(),
            format!("{:.1}", report.view_changes.mean),
            format!("{:.1}", report.min_final_height.mean),
            verdict(report.agreement_rate == 1.0),
            expected.into(),
        ]);
    }
    println!("{table}\n");

    println!(
        "Consistency: {} (≈{:.0} view-changed rounds checked across 20 seeds —\n\
         no honest player ever finalized a round another honest player\n\
         abandoned, and every run kept agreement)",
        verdict(consistency_ok),
        checked_rounds
    );
    println!(
        "Robustness:  with t ≤ t0 byzantine players pressing for a view\n\
         change under honest leaders, the n − t0 view-change quorum is\n\
         unreachable — rounds proceed; only t > t0 (beyond the threat\n\
         model) can starve the round, exactly as Claim 2 argues."
    );
}
