//! **E11 — Claim 2**: the view-change sub-protocol satisfies
//!
//! * **Consistency** — if an honest player commits to a view change in
//!   round r, no honest player reaches agreement in r (across seeds and
//!   adversarial pre-GST schedules);
//! * **Robustness** — the byzantine set alone cannot force a view change
//!   under an honest leader.
//!
//! Run: `cargo run -p prft-bench --release --bin claim2_view_change`

use prft_bench::verdict;
use prft_core::analysis::{analyze, honest_ids};
use prft_core::{Behavior, Harness, NetworkChoice, ProposeAction};
use prft_metrics::AsciiTable;
use prft_sim::SimTime;
use prft_types::{Block, NodeId, Round};

/// A byzantine player that spams view-change participation but otherwise
/// stays silent — the "T tries to force a view change" adversary.
/// (`join_view_change` is true: it will echo VCs; what Robustness says is
/// that its own t0-sized coalition can't *reach* the n−t0 quorum.)
#[derive(Debug, Default)]
struct VcSpammer;

impl Behavior for VcSpammer {
    fn label(&self) -> &'static str {
        "vc-spammer"
    }
    fn on_propose(&mut self, _round: Round, _b: &Block) -> ProposeAction {
        ProposeAction::Silent
    }
    fn on_vote(&mut self, _r: Round, _v: prft_types::Digest) -> prft_core::BallotAction {
        prft_core::BallotAction::Silent
    }
    fn on_commit(&mut self, _r: Round, _v: prft_types::Digest) -> prft_core::BallotAction {
        prft_core::BallotAction::Silent
    }
    fn on_reveal(&mut self, _r: Round, _v: prft_types::Digest) -> prft_core::BallotAction {
        prft_core::BallotAction::Silent
    }
}

fn main() {
    println!("E11 — Claim 2: view-change Consistency and Robustness\n");
    let n = 9; // t0 = 2

    // ---- Consistency across adversarial schedules ----
    let mut consistency_ok = true;
    let mut checked_rounds = 0u64;
    for seed in 0..20u64 {
        let mut sim = Harness::new(n, seed)
            .network(NetworkChoice::PartiallySynchronous {
                gst: SimTime(2_000),
                delta: SimTime(10),
            })
            .max_rounds(6)
            .build();
        sim.run_until(SimTime(2_000_000));
        let honest = honest_ids(&sim);
        // For every round any honest player abandoned via view change, no
        // honest player may have finalized that round's block.
        for &id in &honest {
            for &vc_round in &sim.node(id).stats().view_changed_rounds {
                checked_rounds += 1;
                for &other in &honest {
                    let finalized_in_r = sim
                        .node(other)
                        .stats()
                        .finalize_times
                        .iter()
                        .any(|(r, _)| *r == vc_round);
                    if finalized_in_r {
                        consistency_ok = false;
                        println!(
                            "  CONSISTENCY VIOLATION seed {seed}: {other} finalized {vc_round} \
                             while {id} view-changed it"
                        );
                    }
                }
            }
        }
        // And the run must still agree overall.
        if !analyze(&sim).agreement {
            consistency_ok = false;
        }
    }

    // ---- Robustness: byzantine-only view-change pressure ----
    let mut robustness_rows = Vec::new();
    for byz in [1usize, 2, 3] {
        let mut h = Harness::new(n, 5)
            .network(NetworkChoice::Synchronous { delta: SimTime(10) })
            .max_rounds(3);
        for i in 0..byz {
            h = h.with_behavior(NodeId(n - 1 - i), Box::new(VcSpammer));
        }
        let mut sim = h.build();
        sim.run_until(SimTime(2_000_000));
        let r = analyze(&sim);
        // With byz ≤ t0 the silent spammers can't stop rounds: no view
        // change completes under honest leaders, blocks finalize.
        robustness_rows.push((byz, r.view_changes, r.min_final_height, r.agreement));
    }

    let mut table = AsciiTable::new(vec![
        "byzantine (silent + VC-hungry)",
        "honest view changes",
        "blocks finalized",
        "agreement",
        "expected",
    ])
    .with_title(&format!("Robustness (n = {n}, t0 = 2, honest leaders)"));
    for (byz, vcs, blocks, agreement) in robustness_rows {
        let expected = if byz <= 2 {
            "no VC, progress"
        } else {
            "VC (quorum starved)"
        };
        table.row(vec![
            byz.to_string(),
            vcs.to_string(),
            blocks.to_string(),
            verdict(agreement),
            expected.into(),
        ]);
    }
    println!("{table}\n");

    println!(
        "Consistency: {} (checked {} view-changed rounds across 20 seeds —\n\
         no honest player ever finalized a round another honest player\n\
         abandoned, and every run kept agreement)",
        verdict(consistency_ok),
        checked_rounds
    );
    println!(
        "Robustness:  with t ≤ t0 byzantine players pressing for a view\n\
         change under honest leaders, the n − t0 view-change quorum is\n\
         unreachable — rounds proceed; only t > t0 (beyond the threat\n\
         model) can starve the round, exactly as Claim 2 argues."
    );
}
