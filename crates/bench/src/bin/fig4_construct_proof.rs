//! **E9 — Figure 4**: the `ConstructProof(M, t0)` procedure — correctness
//! on adversarial commit matrices and cost scaling.
//!
//! Checks: exactly the double-signers are named (completeness), honest
//! players are never framed (soundness, even against tampered evidence),
//! the `> t0` bar gates the Expose, and construction cost scales linearly
//! in the number of ballots scanned (the paper's Figure 4 is the O(n³)
//! nested scan; our detector is the same relation computed with an index).
//! The adversarial-matrix grid fans across cores through the `prft-lab`
//! thread pool.
//!
//! Run: `cargo run -p prft-bench --release --bin fig4_construct_proof`

use prft_bench::verdict;
use prft_core::{construct_proof, signed_ballot, verify_expose, Phase, SignedBallot};
use prft_crypto::KeyRegistry;
use prft_lab::BatchRunner;
use prft_metrics::AsciiTable;
use prft_types::{Digest, NodeId, Round};
use std::time::Instant;

/// Builds the reveal-phase ballot matrix for `n` players of which the
/// first `cheats` double-sign their commits.
fn matrix(n: usize, cheats: usize, seed: u64) -> (Vec<SignedBallot>, KeyRegistry) {
    let (registry, keys) = KeyRegistry::trusted_setup(n, seed);
    let va = Digest::of_bytes(b"block-a");
    let vb = Digest::of_bytes(b"block-b");
    let mut ballots = Vec::new();
    for (i, key) in keys.iter().enumerate() {
        ballots.push(signed_ballot(key, Round(1), Phase::Commit, va));
        if i < cheats {
            ballots.push(signed_ballot(key, Round(1), Phase::Commit, vb));
        }
    }
    (ballots, registry)
}

fn main() {
    println!("E9 — Figure 4: ConstructProof correctness and cost\n");

    let grid: Vec<(usize, usize, usize)> = vec![
        (9, 2, 0),
        (9, 2, 1),
        (9, 2, 2),
        (9, 2, 3),
        (9, 2, 5),
        (33, 8, 9),
    ];
    // (convicted count, exact set?, expose gate correct?)
    let outcomes = BatchRunner::all_cores().map(&grid, |_, &(n, t0, cheats)| {
        let (ballots, registry) = matrix(n, cheats, 42);
        let proof = construct_proof(&ballots);
        let convicted: Vec<NodeId> = proof.iter().map(|e| e.accused()).collect();
        let expected: Vec<NodeId> = (0..cheats).map(NodeId).collect();
        let exact = convicted == expected;
        let expose = verify_expose(&proof, &registry, t0).is_some();
        (convicted.len(), exact, expose == (cheats > t0))
    });

    let mut table = AsciiTable::new(vec![
        "n",
        "t0",
        "double-signers",
        "convicted",
        "exact set",
        "expose fires (>t0)",
    ])
    .with_title("Correctness on adversarial commit matrices");
    for (&(n, t0, cheats), (convicted, exact, gate_ok)) in grid.iter().zip(outcomes) {
        table.row(vec![
            n.to_string(),
            t0.to_string(),
            cheats.to_string(),
            convicted.to_string(),
            verdict(exact),
            verdict(gate_ok),
        ]);
    }
    println!("{table}\n");

    // Soundness against forged evidence.
    let (registry, keys) = KeyRegistry::trusted_setup(4, 7);
    let honest = signed_ballot(&keys[0], Round(1), Phase::Commit, Digest::of_bytes(b"a"));
    let mut tampered = honest.clone();
    tampered.payload.value = Digest::of_bytes(b"b");
    let framed = construct_proof(&[honest, tampered]);
    let framing_rejected = verify_expose(&framed, &registry, 0).is_none();
    println!(
        "Framing check: tampered copy of an honest ballot {} convict\n\
         (signature verification inside V(π) rejects it): {}\n",
        if framing_rejected { "does NOT" } else { "DOES" },
        verdict(framing_rejected),
    );

    // Cost scaling (sequential: wall-clock per matrix must not share cores).
    let mut cost = AsciiTable::new(vec!["ballots scanned", "construct time", "per ballot"])
        .with_title("Cost (indexed detector; paper Fig. 4 is the same relation, O(n²·n) scanned)");
    for scale in [1_000usize, 10_000, 100_000] {
        let (ballots, _) = matrix(scale / 2, scale / 10, 3);
        let start = Instant::now();
        let proof = construct_proof(&ballots);
        let elapsed = start.elapsed();
        assert_eq!(proof.len(), scale / 10);
        cost.row(vec![
            ballots.len().to_string(),
            format!("{elapsed:?}"),
            format!("{:.0} ns", elapsed.as_nanos() as f64 / ballots.len() as f64),
        ]);
    }
    println!("{cost}");
}
