//! **E7 — Lemma 4 + Theorem 5**: following pRFT honestly is a *dominant
//! strategy* (DSIC) for every rational θ=1 player — measured, not assumed.
//!
//! We build the empirical game: three rational players (P1, P2, P3) each
//! choose from {π_0, π_abs, π_fork}; the byzantine leader P0 equivocates
//! whenever anyone forks. Every one of the 27 profiles is simulated and the
//! players' θ=1 utilities measured (state payoff + collateral burns). The
//! checks:
//!
//! * `U(π_0) ≥ U(π)` for every player against every opponent profile
//!   (weak dominance = DSIC, Definition 5);
//! * the fork never succeeds (no profile yields σ_Fork) — Theorem 5's
//!   (t,k)-robustness;
//! * deviators who double-sign are caught and burned whenever the attack
//!   progresses far enough to matter.
//!
//! Run: `cargo run -p prft-bench --release --bin lemma4_dsic`

use prft_adversary::{blackboard, Abstain, EquivocatingLeader, ForkColluder};
use prft_bench::{classify_run, fmt, measure_utility, verdict};
use prft_core::{Behavior, Harness, Honest, NetworkChoice};
use prft_game::{EmpiricalGame, SystemState, Theta, UtilityParams};
use prft_metrics::AsciiTable;
use prft_sim::SimTime;
use prft_types::NodeId;
use std::collections::HashSet;

const STRATEGIES: [&str; 3] = ["π_0", "π_abs", "π_fork"];

/// Runs one profile: rational players P1..P3 with the given strategy
/// indices; byzantine P0 equivocates round 0 iff someone forks.
fn eval_profile(profile: &[usize], params: &UtilityParams) -> (Vec<f64>, SystemState) {
    let n = 9; // t0 = 2, quorum 7; k = 3, t = 1 ⇒ k + t = 4 < n/2
    let board = blackboard();
    let b_group: HashSet<NodeId> = [NodeId(7), NodeId(8)].into_iter().collect();
    let anyone_forks = profile.iter().any(|&s| s == 2);

    let leader: Box<dyn Behavior> = if anyone_forks {
        Box::new(EquivocatingLeader::new(board.clone(), b_group.clone(), n))
    } else {
        // A byzantine player with nothing to coordinate: stays honest
        // (worst case for the deviator comparison).
        Box::new(Honest)
    };

    let mut h = Harness::new(n, 71)
        .network(NetworkChoice::Synchronous { delta: SimTime(10) })
        .max_rounds(3)
        .with_behavior(NodeId(0), leader);
    for (i, &s) in profile.iter().enumerate() {
        let player = NodeId(1 + i);
        let behavior: Box<dyn Behavior> = match s {
            0 => Box::new(Honest),
            1 => Box::new(Abstain),
            2 => Box::new(ForkColluder::new(board.clone(), b_group.clone(), n)),
            _ => unreachable!(),
        };
        h = h.with_behavior(player, behavior);
    }
    let mut sim = h.build();
    sim.run_until(SimTime(600_000));
    let state = classify_run(&sim, &[]);
    let utilities = (0..3)
        .map(|i| measure_utility(&sim, NodeId(1 + i), Theta::ForkSeeking, params, &[], 3))
        .collect();
    (utilities, state)
}

fn main() {
    println!("E7 — Lemma 4: honest play is DSIC for θ=1 rational players in pRFT\n");
    let params = UtilityParams::default();
    println!(
        "n = 9, t0 = 2; byzantine P0 (equivocates when a fork is on), rational\n\
         P1–P3 ∈ {{π_0, π_abs, π_fork}}; 27 simulated profiles; θ = 1;\n\
         L = {}, α = {}, δ = {}\n",
        params.penalty_l, params.alpha, params.delta
    );

    let mut states = Vec::new();
    let game = EmpiricalGame::explore(vec![3; 3], |profile| {
        let (utilities, state) = eval_profile(profile, &params);
        states.push((profile.clone(), state));
        utilities
    });

    // Representative profiles table.
    let mut table = AsciiTable::new(vec![
        "profile (P1,P2,P3)",
        "σ",
        "U(P1)",
        "U(P2)",
        "U(P3)",
    ])
    .with_title("Selected strategy profiles (full game has 27)");
    for profile in [
        vec![0, 0, 0],
        vec![1, 0, 0],
        vec![2, 0, 0],
        vec![2, 2, 0],
        vec![2, 2, 2],
        vec![1, 1, 1],
    ] {
        let us = game.utilities(&profile);
        let state = states
            .iter()
            .find(|(p, _)| *p == profile)
            .map(|(_, s)| s.symbol())
            .unwrap_or("?");
        table.row(vec![
            format!(
                "({}, {}, {})",
                STRATEGIES[profile[0]], STRATEGIES[profile[1]], STRATEGIES[profile[2]]
            ),
            state.into(),
            fmt(us[0]),
            fmt(us[1]),
            fmt(us[2]),
        ]);
    }
    println!("{table}\n");

    // The DSIC check.
    let mut dsic = AsciiTable::new(vec!["player", "π_0 dominant", "π_abs dominant", "π_fork dominant"])
        .with_title("Dominance (≥ against every opponent profile, ε = 1e-9)");
    let mut all_dsic = true;
    for p in 0..3 {
        let d0 = game.is_dominant(p, 0, 1e-9);
        all_dsic &= d0;
        dsic.row(vec![
            format!("P{}", p + 1),
            verdict(d0),
            verdict(game.is_dominant(p, 1, 1e-9)),
            verdict(game.is_dominant(p, 2, 1e-9)),
        ]);
    }
    println!("{dsic}\n");

    // Debug: print dominance violations.
    for player in 0..3 {
        for (profile, _) in &states {
            if profile[player] == 0 { continue; }
            let mut honest = profile.clone();
            honest[player] = 0;
            let u_dev = game.utilities(profile)[player];
            let u_hon = game.utilities(&honest)[player];
            if u_dev > u_hon + 1e-9 {
                println!("  VIOLATION: P{} prefers {} at {:?}: {} > {}",
                    player + 1, STRATEGIES[profile[player]], profile, fmt(u_dev), fmt(u_hon));
            }
        }
    }
    let all_honest = vec![0, 0, 0];
    let forked_anywhere = states.iter().any(|(_, s)| *s == SystemState::Fork);
    println!("Checks:");
    println!("  π_0 is DSIC for every rational player: {}", verdict(all_dsic));
    println!(
        "  all-honest is a dominant-strategy equilibrium: {}",
        verdict(game.is_dse(&all_honest, 1e-9))
    );
    println!(
        "  σ_Fork reached in ANY of the 27 profiles: {} (Theorem 5: never)",
        verdict(forked_anywhere)
    );
    let mut max_deviation_utility = f64::NEG_INFINITY;
    for p in 0..3 {
        for (profile, _) in &states {
            if profile[p] != 0 {
                max_deviation_utility = max_deviation_utility.max(game.utilities(profile)[p]);
            }
        }
    }
    println!(
        "  best deviation utility anywhere: {} ≤ U(π_0) = 0: {}",
        fmt(max_deviation_utility),
        verdict(max_deviation_utility <= 1e-9)
    );
    println!(
        "\nConclusion (Lemma 4 / Theorem 5): deviation never pays — forking\n\
         gets the deviators caught in the Reveal phase and burned (−L), and\n\
         abstention at θ=1 only risks σ_NP (−α per round); honest play is a\n\
         dominant strategy, so pRFT is (t,k)-robust with a DSIC guarantee\n\
         rather than TRAP's contested Nash equilibrium."
    );
}
