//! **E7 — Lemma 4 + Theorem 5**: following pRFT honestly is a *dominant
//! strategy* (DSIC) for every rational θ=1 player — measured, not assumed.
//!
//! We build the empirical game: three rational players (P1, P2, P3) each
//! choose from {π_0, π_abs, π_fork}; the byzantine leader P0 equivocates
//! whenever anyone forks. Every one of the 27 profiles becomes a
//! `prft-lab` scenario spec and the whole grid is simulated in parallel
//! through the batch engine; utilities come from the engine's per-player
//! payoff measurement. The checks:
//!
//! * `U(π_0) ≥ U(π)` for every player against every opponent profile
//!   (weak dominance = DSIC, Definition 5);
//! * the fork never succeeds (no profile yields σ_Fork) — Theorem 5's
//!   (t,k)-robustness;
//! * deviators who double-sign are caught and burned whenever the attack
//!   progresses far enough to matter.
//!
//! Run: `cargo run -p prft-bench --release --bin lemma4_dsic`

use prft_bench::{fmt, verdict};
use prft_game::{EmpiricalGame, SystemState, Theta, UtilityParams};
use prft_lab::{BatchRunner, Role, ScenarioSpec, UtilitySpec};
use prft_metrics::AsciiTable;

const STRATEGIES: [&str; 3] = ["π_0", "π_abs", "π_fork"];
const N: usize = 9; // t0 = 2, quorum 7; k = 3, t = 1 ⇒ k + t = 4 < n/2

/// The scenario spec for one strategy profile: byzantine P0 equivocates
/// round 0 iff someone forks; rational P1..P3 play the profile.
fn profile_spec(profile: &[usize]) -> ScenarioSpec {
    let anyone_forks = profile.contains(&2);
    let mut spec = ScenarioSpec::new(format!("{:?}", profile), N, 3)
        .base_seed(71)
        .fork_b_group([7, 8])
        .utility(UtilitySpec::standard(Theta::ForkSeeking, 3))
        .horizon(600_000);
    if anyone_forks {
        spec = spec.role(0, Role::EquivocatingLeader { only_round: None });
    }
    for (i, &s) in profile.iter().enumerate() {
        spec = match s {
            0 => spec,
            1 => spec.role(1 + i, Role::Abstain),
            2 => spec.role(1 + i, Role::ForkColluder),
            _ => unreachable!(),
        };
    }
    spec
}

fn main() {
    println!("E7 — Lemma 4: honest play is DSIC for θ=1 rational players in pRFT\n");
    let params = UtilityParams::default();
    println!(
        "n = {N}, t0 = 2; byzantine P0 (equivocates when a fork is on), rational\n\
         P1–P3 ∈ {{π_0, π_abs, π_fork}}; 27 simulated profiles (parallel via\n\
         prft-lab); θ = 1; L = {}, α = {}, δ = {}\n",
        params.penalty_l, params.alpha, params.delta
    );

    // Enumerate all 27 profiles and run them through the batch engine.
    let profiles: Vec<Vec<usize>> = (0..27).map(|i| vec![i / 9, (i / 3) % 3, i % 3]).collect();
    let evaluated: Vec<(Vec<f64>, SystemState)> =
        BatchRunner::all_cores().map(&profiles, |_, profile| {
            let spec = profile_spec(profile);
            let record = prft_lab::run_one(&spec, spec.base_seed);
            let utilities = (0..3).map(|i| record.utilities[1 + i]).collect();
            (utilities, record.sigma)
        });
    let states: Vec<(Vec<usize>, SystemState)> = profiles
        .iter()
        .cloned()
        .zip(evaluated.iter().map(|(_, s)| *s))
        .collect();

    let game = EmpiricalGame::explore(vec![3; 3], |profile| {
        let idx = profile[0] * 9 + profile[1] * 3 + profile[2];
        evaluated[idx].0.clone()
    });

    // Representative profiles table.
    let mut table = AsciiTable::new(vec!["profile (P1,P2,P3)", "σ", "U(P1)", "U(P2)", "U(P3)"])
        .with_title("Selected strategy profiles (full game has 27)");
    for profile in [
        vec![0, 0, 0],
        vec![1, 0, 0],
        vec![2, 0, 0],
        vec![2, 2, 0],
        vec![2, 2, 2],
        vec![1, 1, 1],
    ] {
        let us = game.utilities(&profile);
        let state = states
            .iter()
            .find(|(p, _)| *p == profile)
            .map(|(_, s)| s.symbol())
            .unwrap_or("?");
        table.row(vec![
            format!(
                "({}, {}, {})",
                STRATEGIES[profile[0]], STRATEGIES[profile[1]], STRATEGIES[profile[2]]
            ),
            state.into(),
            fmt(us[0]),
            fmt(us[1]),
            fmt(us[2]),
        ]);
    }
    println!("{table}\n");

    // The DSIC check.
    let mut dsic = AsciiTable::new(vec![
        "player",
        "π_0 dominant",
        "π_abs dominant",
        "π_fork dominant",
    ])
    .with_title("Dominance (≥ against every opponent profile, ε = 1e-9)");
    let mut all_dsic = true;
    for p in 0..3 {
        let d0 = game.is_dominant(p, 0, 1e-9);
        all_dsic &= d0;
        dsic.row(vec![
            format!("P{}", p + 1),
            verdict(d0),
            verdict(game.is_dominant(p, 1, 1e-9)),
            verdict(game.is_dominant(p, 2, 1e-9)),
        ]);
    }
    println!("{dsic}\n");

    // Debug: print dominance violations.
    for player in 0..3 {
        for (profile, _) in &states {
            if profile[player] == 0 {
                continue;
            }
            let mut honest = profile.clone();
            honest[player] = 0;
            let u_dev = game.utilities(profile)[player];
            let u_hon = game.utilities(&honest)[player];
            if u_dev > u_hon + 1e-9 {
                println!(
                    "  VIOLATION: P{} prefers {} at {:?}: {} > {}",
                    player + 1,
                    STRATEGIES[profile[player]],
                    profile,
                    fmt(u_dev),
                    fmt(u_hon)
                );
            }
        }
    }
    let all_honest = vec![0, 0, 0];
    let forked_anywhere = states.iter().any(|(_, s)| *s == SystemState::Fork);
    println!("Checks:");
    println!(
        "  π_0 is DSIC for every rational player: {}",
        verdict(all_dsic)
    );
    println!(
        "  all-honest is a dominant-strategy equilibrium: {}",
        verdict(game.is_dse(&all_honest, 1e-9))
    );
    println!(
        "  σ_Fork reached in ANY of the 27 profiles: {} (Theorem 5: never)",
        verdict(forked_anywhere)
    );
    let mut max_deviation_utility = f64::NEG_INFINITY;
    for p in 0..3 {
        for (profile, _) in &states {
            if profile[p] != 0 {
                max_deviation_utility = max_deviation_utility.max(game.utilities(profile)[p]);
            }
        }
    }
    println!(
        "  best deviation utility anywhere: {} ≤ U(π_0) = 0: {}",
        fmt(max_deviation_utility),
        verdict(max_deviation_utility <= 1e-9)
    );
    println!(
        "\nConclusion (Lemma 4 / Theorem 5): deviation never pays — forking\n\
         gets the deviators caught in the Reveal phase and burned (−L), and\n\
         abstention at θ=1 only risks σ_NP (−α per round); honest play is a\n\
         dominant strategy, so pRFT is (t,k)-robust with a DSIC guarantee\n\
         rather than TRAP's contested Nash equilibrium."
    );
}
