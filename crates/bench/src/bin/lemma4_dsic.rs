//! **E7 — Lemma 4 + Theorem 5**: following pRFT honestly is a *dominant
//! strategy* (DSIC) for every rational θ=1 player — measured, not assumed.
//!
//! The empirical game is the registered `lemma4-dsic` [`GameDef`]: three
//! rational players (P1, P2, P3) each choose from {π_0, π_abs, π_fork};
//! the byzantine leader P0 equivocates whenever anyone forks. The
//! [`GameExplorer`] sweeps all 27 profiles through the batch engine and
//! the finished [`prft_game::UtilityTable`] answers the checks:
//!
//! * `U(π_0) ≥ U(π)` for every player against every opponent profile
//!   (weak dominance = DSIC, Definition 5);
//! * the fork never succeeds (no profile yields σ_Fork) — Theorem 5's
//!   (t,k)-robustness;
//! * deviators who double-sign are caught and burned whenever the attack
//!   progresses far enough to matter.
//!
//! The same sweep is available as `prft-lab explore run lemma4-dsic`
//! (add `--cache DIR` to reuse cells across sweeps, or run `lemma4-wide`
//! for the 4-strategies-per-player extension).
//!
//! Run: `cargo run -p prft-bench --release --bin lemma4_dsic`

use prft_bench::{fmt, verdict};
use prft_game::{SystemState, UtilityParams};
use prft_lab::{find_game, BatchRunner, GameDef, GameExplorer};
use prft_metrics::AsciiTable;

/// Seeded runs aggregated per profile cell.
const SEEDS: u64 = 4;

fn main() {
    println!("E7 — Lemma 4: honest play is DSIC for θ=1 rational players in pRFT\n");
    let game: GameDef = find_game("lemma4-dsic").expect("registered game");
    let params = UtilityParams::default();
    println!(
        "n = 9, t0 = 2; byzantine P0 (equivocates when a fork is on), rational\n\
         P1–P3 ∈ {{π_0, π_abs, π_fork}}; 27 simulated profiles × {SEEDS} seeds\n\
         (parallel via the prft-lab explorer); θ = 1; L = {}, α = {}, δ = {}\n",
        params.penalty_l, params.alpha, params.delta
    );

    let exploration = GameExplorer::new(BatchRunner::all_cores()).explore(&game, SEEDS);
    let table = &exploration.table;

    // Representative profiles table.
    let mut cells = AsciiTable::new(vec!["profile (P1,P2,P3)", "σ", "U(P1)", "U(P2)", "U(P3)"])
        .with_title("Selected strategy profiles (full game has 27)");
    for profile in [
        vec![0, 0, 0],
        vec![1, 0, 0],
        vec![2, 0, 0],
        vec![2, 2, 0],
        vec![2, 2, 2],
        vec![1, 1, 1],
    ] {
        let stats = table.get(&profile).expect("complete sweep");
        cells.row(vec![
            game.profile_label(&profile),
            stats.sigma.symbol().into(),
            fmt(stats.utilities[0]),
            fmt(stats.utilities[1]),
            fmt(stats.utilities[2]),
        ]);
    }
    println!("{cells}\n");

    // The DSIC check: per-player dominance of every strategy.
    let mut dsic = AsciiTable::new(vec![
        "player",
        "π_0 dominant",
        "π_abs dominant",
        "π_fork dominant",
    ])
    .with_title("Dominance (≥ against every opponent profile, ε = 1e-9)");
    let mut all_dsic = true;
    for p in 0..game.players() {
        let d0 = table.is_dominant(p, 0, 1e-9);
        all_dsic &= d0;
        dsic.row(vec![
            format!("P{}", p + 1),
            verdict(d0),
            verdict(table.is_dominant(p, 1, 1e-9)),
            verdict(table.is_dominant(p, 2, 1e-9)),
        ]);
    }
    println!("{dsic}\n");

    // Debug: print dominance violations (empty when the lemma holds).
    for player in 0..game.players() {
        for (profile, _) in table.cells() {
            if profile[player] == 0 {
                continue;
            }
            let gain = -table.deviation_gain(profile, player, 0);
            if gain > 1e-9 {
                println!(
                    "  VIOLATION: P{} prefers {} at {:?} by {}",
                    player + 1,
                    game.label(player, profile[player]),
                    profile,
                    fmt(gain),
                );
            }
        }
    }

    let all_honest = [0, 0, 0];
    let forked_anywhere = table.cells().any(|(_, s)| s.sigma == SystemState::Fork);
    println!("Checks:");
    println!(
        "  π_0 is DSIC for every rational player: {}",
        verdict(all_dsic)
    );
    println!(
        "  all-honest is a dominant-strategy equilibrium: {}",
        verdict((0..game.players()).all(|p| table.is_dominant(p, all_honest[p], 1e-9)))
    );
    println!(
        "  σ_Fork reached in ANY of the 27 profiles: {} (Theorem 5: never)",
        verdict(forked_anywhere)
    );
    let max_deviation_utility = table
        .cells()
        .flat_map(|(profile, stats)| {
            (0..game.players())
                .filter(move |&p| profile[p] != 0)
                .map(move |p| stats.utilities[p])
        })
        .fold(f64::NEG_INFINITY, f64::max);
    println!(
        "  best deviation utility anywhere: {} ≤ U(π_0) = 0: {}",
        fmt(max_deviation_utility),
        verdict(max_deviation_utility <= 1e-9)
    );
    println!(
        "\nConclusion (Lemma 4 / Theorem 5): deviation never pays — forking\n\
         gets the deviators caught in the Reveal phase and burned (−L), and\n\
         abstention at θ=1 only risks σ_NP (−α per round); honest play is a\n\
         dominant strategy, so pRFT is (t,k)-robust with a DSIC guarantee\n\
         rather than TRAP's contested Nash equilibrium."
    );
}
