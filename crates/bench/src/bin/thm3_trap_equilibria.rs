//! **E6 — Theorem 3**: baiting-based rational consensus (TRAP) has a second
//! Nash equilibrium — everybody forks — whenever `k > 2 + t0 − t`, and that
//! equilibrium Pareto-dominates baiting for the rational players, making it
//! focal. The secure equilibrium TRAP's security rests on is therefore not
//! the one rational players will play.
//!
//! Each collusion size `k` is a fully symmetric [`ProfileSpace`] over
//! {π_fork, π_bait} evaluated exactly from the closed-form [`TrapGame`]
//! into a [`UtilityTable`] (the k = 3 point is also registered as
//! `prft-lab explore run trap-k3`); the tables report both equilibria,
//! the minimum baiters needed to avert the fork, the utilities `G/k` vs
//! `R·Pr(σ_0)`, and which equilibrium is focal.
//!
//! Run: `cargo run -p prft-bench --release --bin thm3_trap_equilibria`

use prft_baselines::trap::{TrapGame, TrapStrategy};
use prft_bench::{fmt, verdict};
use prft_game::{analytic, ProfileSpace, UtilityParams, UtilityTable};
use prft_lab::BatchRunner;
use prft_metrics::AsciiTable;

fn main() {
    println!("E6 — Theorem 3: TRAP's fork equilibrium beats its bait equilibrium\n");
    let params = UtilityParams {
        gain_g: 8.0,
        reward_r: 2.0,
        penalty_l: 10.0,
        ..UtilityParams::default()
    };
    println!(
        "Economics: G = {} (collusion gain), R = {} (bait reward), L = {} (deposit)\n",
        params.gain_g, params.reward_r, params.penalty_l
    );

    let n: usize = 20;
    let t = 6;
    let mut table = AsciiTable::new(vec![
        "k",
        "TRAP tolerates",
        "k > 2+t0−t",
        "min baiters",
        "U(π_fork)=G/k",
        "U(bait alone)",
        "all-fork NE",
        "all-bait NE",
        "focal",
    ])
    .with_title(&format!(
        "n = {n}, t = {t} byzantine, t0 = ⌈n/3⌉−1 = {}; exhaustive NE enumeration",
        n.div_ceil(3) - 1
    ));

    // Each collusion size's game is independent — fan the k sweep across
    // cores through the prft-lab thread pool. The per-k game is the full
    // 2^k space collapsed to k+1 canonical profiles by symmetry.
    let ks: Vec<usize> = (1..=3).collect();
    let games: Vec<(TrapGame, UtilityTable)> = BatchRunner::all_cores().map(&ks, |_, &k| {
        let game = TrapGame::new(n, t, k, params);
        let strategies = [TrapStrategy::Fork, TrapStrategy::Bait];
        let space = ProfileSpace::uniform(k, 2).fully_symmetric();
        let table = UtilityTable::exact(space, |profile| {
            let chosen: Vec<TrapStrategy> = profile.iter().map(|&i| strategies[i]).collect();
            let outcome = game.play(&chosen);
            (outcome.utilities, outcome.state)
        });
        (game, table)
    });

    for (&k, (game, ut)) in ks.iter().zip(&games) {
        let ne = ut.nash_equilibria(1e-9);
        let all_fork: Vec<usize> = vec![0; k];
        let all_bait: Vec<usize> = vec![1; k];
        let players: Vec<usize> = (0..k).collect();
        let fork_is_ne = ne.contains(&all_fork);
        let bait_is_ne = ne.contains(&all_bait);
        let eg = ut.to_game();
        let focal = eg
            .focal_among(&ne, &players)
            .map(|p| {
                if *p == all_fork {
                    "π_fork"
                } else if *p == all_bait {
                    "π_bait"
                } else {
                    "mixed"
                }
            })
            .unwrap_or("-");
        // Unilateral bait: one baiter against k−1 forkers.
        let mut lone = all_fork.clone();
        lone[0] = 1;
        table.row(vec![
            k.to_string(),
            verdict(analytic::trap_tolerates(n, k, t)),
            verdict(analytic::trap_fork_is_nash(k, t, n.div_ceil(3) - 1)),
            fmt(game.min_baiters()),
            fmt(params.gain_g / k as f64),
            fmt(ut.utilities(&lone)[0]),
            verdict(fork_is_ne),
            verdict(bait_is_ne),
            focal.into(),
        ]);
    }
    println!("{table}\n");

    println!("Grim-trigger repeated rounds (δ = {}):", params.delta);
    println!(
        "  forever-fork:  Σ δ^r · G/k = {}",
        fmt(prft_game::geometric_total(
            params.gain_g / 3.0,
            params.delta
        ))
    );
    println!(
        "  one-shot bait: R/m = {} then 0 forever",
        fmt(params.reward_r / 3.0)
    );
    println!(
        "\nConclusion (Theorem 3): inside TRAP's own tolerance the all-fork\n\
         profile is a Nash equilibrium — a lone defector cannot avert the\n\
         fork (min baiters > 1) so baiting pays 0 — and it Pareto-dominates\n\
         the all-bait equilibrium (G/k > R/k), making the *insecure*\n\
         equilibrium focal. Baiting-based RC is therefore not secure as an\n\
         Atomic Broadcast building block; pRFT avoids the dilemma by putting\n\
         accountability in the honest players' hands (see lemma4_dsic)."
    );
}
