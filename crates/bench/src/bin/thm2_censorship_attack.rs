//! **E5 — Theorem 2**: under θ=2, *strong* rational consensus (censorship
//! resistance) is impossible in the same regime — the coalition plays
//! `π_pc`: censor when leading, abstain under honest leaders. Liveness
//! survives at rate ≈ (k+t)/n, the watched transaction never confirms, and
//! no penalty can attach.
//!
//! The coalition sweep is the registered `censorship-attack` scenario run
//! through the `prft-lab` batch engine.
//!
//! Run: `cargo run -p prft-bench --release --bin thm2_censorship_attack`

use prft_bench::{fmt, verdict};
use prft_game::analytic;
use prft_lab::BatchRunner;
use prft_metrics::AsciiTable;

const SEEDS: u64 = 8;

fn main() {
    println!("E5 — Theorem 2: θ=2 partial censorship (π_pc) is unpunishable\n");
    let scenario = prft_lab::find("censorship-attack").expect("registered");
    // n = 4: the quorum needs every player, so abstention under honest
    // leaders reliably starves honest-led rounds (the paper's regime
    // requires the coalition's silence to be decisive).
    let n = scenario.specs[0].n;
    let rounds = scenario.specs[0].max_rounds;

    let reports = BatchRunner::all_cores().run_grid(&scenario.specs, SEEDS);

    let mut table = AsciiTable::new(vec![
        "k+t",
        "blocks/rounds",
        "throughput",
        "≈(k+t)/n",
        "censored tx in chain",
        "bg tx in chain",
        "burned",
        "σ (modal)",
        "U(π_pc|θ=2)",
    ])
    .with_title(&format!(
        "n = {n}, {rounds} round budget, {SEEDS} seeds; collusion leads rounds r ≡ 0..k+t−1 (mod n)"
    ));

    for report in &reports {
        let coalition: usize = report
            .label
            .trim_start_matches("k+t=")
            .parse()
            .expect("label");
        // Spec order: tx 999 (censored) first, then background traffic.
        let censored_in = report
            .records
            .iter()
            .any(|r| *r.txs_included.first().unwrap_or(&false));
        let bg_in = report
            .records
            .iter()
            .all(|r| *r.txs_included.get(1).unwrap_or(&false));
        let u_pc = if coalition > 0 {
            report.utilities[0].mean
        } else {
            0.0
        };
        table.row(vec![
            coalition.to_string(),
            format!(
                "{:.1}/{:.1}",
                report.min_final_height.mean, report.rounds_entered.mean
            ),
            fmt(report.throughput.mean),
            fmt(coalition as f64 / n as f64),
            verdict(censored_in),
            verdict(bg_in),
            fmt(report.burned_players.mean),
            report.modal_sigma().symbol().into(),
            fmt(u_pc),
        ]);
    }
    println!("{table}\n");

    println!(
        "Analytic check: U(π_pc, θ=2) = α/(1−δ) = {} (realized utility grows\n\
         toward it with the round budget).",
        fmt(analytic::theorem2_censor_utility(1.0, 0.9, 0))
    );
    println!(
        "As Theorem 2 predicts: with the coalition in place the system stays\n\
         live at roughly the coalition's leader share, background traffic\n\
         confirms, the watched transaction never appears in any block, nobody\n\
         is burned (no double signature ever exists), and the θ=2 coalition\n\
         utility is positive — so strong (t,k)-robustness fails while plain\n\
         (t,k)-robustness survives."
    );
}
