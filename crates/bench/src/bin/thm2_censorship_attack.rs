//! **E5 — Theorem 2**: under θ=2, *strong* rational consensus (censorship
//! resistance) is impossible in the same regime — the coalition plays
//! `π_pc`: censor when leading, abstain under honest leaders. Liveness
//! survives at rate ≈ (k+t)/n, the watched transaction never confirms, and
//! no penalty can attach.
//!
//! Run: `cargo run -p prft-bench --release --bin thm2_censorship_attack`

use prft_adversary::PartialCensor;
use prft_bench::{classify_run, fmt, measure_utility, verdict};
use prft_core::analysis::{analyze, tx_included_anywhere};
use prft_core::{Harness, NetworkChoice};
use prft_game::{analytic, SystemState, Theta, UtilityParams};
use prft_metrics::AsciiTable;
use prft_sim::SimTime;
use prft_types::{NodeId, Transaction, TxId};
use std::collections::HashSet;

const HORIZON: SimTime = SimTime(2_000_000);

struct Outcome {
    blocks: u64,
    rounds: u64,
    censored_included: bool,
    background_included: bool,
    burned: usize,
    state: SystemState,
    utility: f64,
}

fn run(n: usize, coalition_size: usize, rounds: u64) -> Outcome {
    let censored = TxId(999);
    let collusion: HashSet<NodeId> = (0..coalition_size).map(NodeId).collect();
    let censor_set: HashSet<TxId> = [censored].into_iter().collect();
    let mut h = Harness::new(n, 41)
        .network(NetworkChoice::Synchronous { delta: SimTime(10) })
        .max_rounds(rounds)
        .submit(None, Transaction::new(999, NodeId(2), b"the censored tx".to_vec()))
        .submit(None, Transaction::new(1, NodeId(3), b"background-1".to_vec()))
        .submit(None, Transaction::new(2, NodeId(3), b"background-2".to_vec()));
    for &m in &collusion {
        h = h.with_behavior(
            m,
            Box::new(PartialCensor::new(n, collusion.clone(), censor_set.clone())),
        );
    }
    let mut sim = h.build();
    sim.run_until(HORIZON);
    let r = analyze(&sim);
    let state = classify_run(&sim, &[censored]);
    let utility = if coalition_size > 0 {
        measure_utility(
            &sim,
            NodeId(0),
            Theta::CensorSeeking,
            &UtilityParams::default(),
            &[censored],
            rounds,
        )
    } else {
        0.0
    };
    let rounds_entered = r
        .honest
        .iter()
        .map(|&id| sim.node(id).stats().rounds_entered)
        .max()
        .unwrap_or(0);
    Outcome {
        blocks: r.min_final_height,
        rounds: rounds_entered,
        censored_included: tx_included_anywhere(&sim, censored),
        background_included: tx_included_anywhere(&sim, TxId(1)),
        burned: r.burned.len(),
        state,
        utility,
    }
}

fn main() {
    println!("E5 — Theorem 2: θ=2 partial censorship (π_pc) is unpunishable\n");
    // n = 4: the quorum needs every player, so abstention under honest
    // leaders reliably starves honest-led rounds (the paper's regime
    // requires the coalition's silence to be decisive).
    let n = 4;
    let rounds = 12;
    let mut table = AsciiTable::new(vec![
        "k+t",
        "blocks/rounds",
        "throughput",
        "≈(k+t)/n",
        "censored tx in chain",
        "bg tx in chain",
        "burned",
        "σ",
        "U(π_pc|θ=2)",
    ])
    .with_title(&format!("n = {n}, {rounds} round budget; collusion leads rounds r ≡ 0..k+t−1 (mod n)"));

    for coalition in [0usize, 1, 2] {
        let o = run(n, coalition, rounds);
        table.row(vec![
            coalition.to_string(),
            format!("{}/{}", o.blocks, o.rounds),
            fmt(o.blocks as f64 / o.rounds.max(1) as f64),
            fmt(coalition as f64 / n as f64),
            verdict(o.censored_included),
            verdict(o.background_included),
            o.burned.to_string(),
            o.state.symbol().into(),
            fmt(o.utility),
        ]);
    }
    println!("{table}\n");

    println!(
        "Analytic check: U(π_pc, θ=2) = α/(1−δ) = {} (realized utility grows\n\
         toward it with the round budget).",
        fmt(analytic::theorem2_censor_utility(1.0, 0.9, 0))
    );
    println!(
        "As Theorem 2 predicts: with the coalition in place the system stays\n\
         live at roughly the coalition's leader share, background traffic\n\
         confirms, the watched transaction never appears in any block, nobody\n\
         is burned (no double signature ever exists), and the θ=2 coalition\n\
         utility is positive — so strong (t,k)-robustness fails while plain\n\
         (t,k)-robustness survives."
    );
}
