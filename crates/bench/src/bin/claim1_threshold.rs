//! **E10 — Claim 1**: the agreement threshold τ must lie in
//! `[⌊(n+t0)/2⌋ + 1, n − t0]`.
//!
//! * τ > n − t0: byzantine abstention starves the quorum → liveness dies;
//! * τ ≤ ⌊(n+t0)/2⌋: two partitions can each assemble a τ-quorum with the
//!   collusion's help → double agreement (fork);
//! * τ inside the window: live and safe.
//!
//! Run: `cargo run -p prft-bench --release --bin claim1_threshold`

use prft_adversary::{blackboard, Abstain, EquivocatingLeader, ForkColluder};
use prft_bench::verdict;
use prft_core::analysis::analyze;
use prft_core::{Config, Harness, NetworkChoice};
use prft_game::analytic;
use prft_metrics::AsciiTable;
use prft_net::{PartitionWindow, PartitionedNet, SynchronousNet};
use prft_sim::SimTime;
use prft_types::{NodeId, Round};
use std::collections::HashSet;

const HORIZON: SimTime = SimTime(400_000);

/// Liveness probe: t0 byzantine players abstain; can the rest still agree?
fn liveness_with_tau(n: usize, tau: usize) -> bool {
    let cfg = Config::for_committee(n).with_tau(tau).with_max_rounds(4);
    let t0 = cfg.t0;
    let mut h = Harness::new(n, 3)
        .config(cfg)
        .network(NetworkChoice::Synchronous { delta: SimTime(10) });
    for i in 0..t0 {
        h = h.with_behavior(NodeId(n - 1 - i), Box::new(Abstain));
    }
    let mut sim = h.build();
    sim.run_until(HORIZON);
    analyze(&sim).min_final_height >= 2
}

/// Safety probe: the Lemma 4 partition attack (equivocating leader +
/// colluders bridging two honest halves). Returns whether agreement held.
fn safety_with_tau(n: usize, tau: usize) -> bool {
    let board = blackboard();
    let bridges = vec![NodeId(0), NodeId(1), NodeId(2)];
    let a_half: Vec<NodeId> = (3..6).map(NodeId).collect();
    let b_half: Vec<NodeId> = (6..n).map(NodeId).collect();
    let b_group: HashSet<NodeId> = b_half.iter().copied().collect();

    let mut net = PartitionedNet::new(Box::new(SynchronousNet::new(SimTime(10))));
    net.add_window(PartitionWindow::split_with_bridges(
        SimTime::ZERO,
        SimTime(100_000),
        vec![a_half, b_half],
        bridges,
    ));
    let cfg = Config::for_committee(n).with_tau(tau).with_max_rounds(1);
    let mut h = Harness::new(n, 13)
        .config(cfg)
        .network(NetworkChoice::Custom(Box::new(net)))
        .with_behavior(
            NodeId(0),
            Box::new(EquivocatingLeader::new(board.clone(), b_group.clone(), n).only_rounds([Round(0)])),
        );
    for i in 1..=2 {
        h = h.with_behavior(
            NodeId(i),
            Box::new(ForkColluder::new(board.clone(), b_group.clone(), n)),
        );
    }
    let mut sim = h.build();
    sim.run_until(SimTime(50_000));
    analyze(&sim).agreement
}

fn main() {
    println!("E10 — Claim 1: the safe window for the agreement threshold τ\n");
    let n = 10;
    let cfg = Config::for_committee(n);
    let (lo, hi) = analytic::tau_window(n, cfg.t0);
    println!(
        "n = {n}, t0 = {}; Claim 1 window: τ ∈ [{lo}, {hi}] (pRFT uses τ = n − t0 = {hi})\n",
        cfg.t0
    );

    let mut table = AsciiTable::new(vec![
        "τ",
        "in window",
        "liveness (t0 abstain)",
        "agreement (partition+equivocation)",
        "verdict",
    ]);
    for tau in [4usize, 5, 6, 7, 8, 9, 10] {
        let in_window = analytic::tau_is_safe(n, cfg.t0, tau);
        let live = liveness_with_tau(n, tau);
        let safe = safety_with_tau(n, tau);
        let as_claimed = if in_window { live && safe } else { !(live && safe) };
        table.row(vec![
            tau.to_string(),
            verdict(in_window),
            verdict(live),
            verdict(safe),
            if as_claimed { "matches Claim 1".into() } else { "UNEXPECTED".to_string() },
        ]);
    }
    println!("{table}\n");
    println!(
        "Below the window the bridged-partition attack double-agrees (fork);\n\
         above it, t0 silent players already deny the quorum. Only inside\n\
         [⌊(n+t0)/2⌋+1, n−t0] are both probes green — Claim 1's necessity,\n\
         measured."
    );
}
