//! **E10 — Claim 1**: the agreement threshold τ must lie in
//! `[⌊(n+t0)/2⌋ + 1, n − t0]`.
//!
//! * τ > n − t0: byzantine abstention starves the quorum → liveness dies;
//! * τ ≤ ⌊(n+t0)/2⌋: two partitions can each assemble a τ-quorum with the
//!   collusion's help → double agreement (fork);
//! * τ inside the window: live and safe.
//!
//! Both probes are `prft-lab` scenario specs; the τ sweep fans across
//! cores through the batch engine.
//!
//! Run: `cargo run -p prft-bench --release --bin claim1_threshold`

use prft_bench::verdict;
use prft_game::analytic;
use prft_lab::{BatchRunner, PartitionSpec, Role, ScenarioSpec};
use prft_metrics::AsciiTable;

const N: usize = 10;
const T0: usize = 2;

/// Liveness probe: t0 byzantine players abstain; can the rest still agree?
fn liveness_spec(tau: usize) -> ScenarioSpec {
    ScenarioSpec::new(format!("live tau={tau}"), N, 4)
        .base_seed(3)
        .tau(tau)
        .roles((N - T0)..N, Role::Abstain)
        .horizon(400_000)
}

/// Safety probe: the Lemma 4 partition attack (equivocating leader +
/// colluders bridging two honest halves).
fn safety_spec(tau: usize) -> ScenarioSpec {
    ScenarioSpec::new(format!("safe tau={tau}"), N, 1)
        .base_seed(13)
        .tau(tau)
        .partition(PartitionSpec {
            start: 0,
            end: 100_000,
            groups: vec![(3..6).collect(), (6..N).collect()],
            bridges: vec![0, 1, 2],
        })
        .role(
            0,
            Role::EquivocatingLeader {
                only_round: Some(0),
            },
        )
        .roles([1, 2], Role::ForkColluder)
        .fork_b_group(6..N)
        .horizon(50_000)
}

fn main() {
    println!("E10 — Claim 1: the safe window for the agreement threshold τ\n");
    let (lo, hi) = analytic::tau_window(N, T0);
    println!(
        "n = {N}, t0 = {T0}; Claim 1 window: τ ∈ [{lo}, {hi}] (pRFT uses τ = n − t0 = {hi})\n"
    );

    let taus = [4usize, 5, 6, 7, 8, 9, 10];
    // One engine pass over every probe of every τ (14 runs, all cores).
    let probes: Vec<(bool, ScenarioSpec)> = taus
        .iter()
        .flat_map(|&tau| [(true, liveness_spec(tau)), (false, safety_spec(tau))])
        .collect();
    let results = BatchRunner::all_cores().map(&probes, |_, (is_liveness, spec)| {
        let record = prft_lab::run_one(spec, spec.base_seed);
        if *is_liveness {
            record.min_final_height >= 2
        } else {
            record.agreement
        }
    });

    let mut table = AsciiTable::new(vec![
        "τ",
        "in window",
        "liveness (t0 abstain)",
        "agreement (partition+equivocation)",
        "verdict",
    ]);
    for (i, &tau) in taus.iter().enumerate() {
        let in_window = analytic::tau_is_safe(N, T0, tau);
        let live = results[2 * i];
        let safe = results[2 * i + 1];
        let as_claimed = if in_window {
            live && safe
        } else {
            !(live && safe)
        };
        table.row(vec![
            tau.to_string(),
            verdict(in_window),
            verdict(live),
            verdict(safe),
            if as_claimed {
                "matches Claim 1".into()
            } else {
                "UNEXPECTED".to_string()
            },
        ]);
    }
    println!("{table}\n");
    println!(
        "Below the window the bridged-partition attack double-agrees (fork);\n\
         above it, t0 silent players already deny the quorum. Only inside\n\
         [⌊(n+t0)/2⌋+1, n−t0] are both probes green — Claim 1's necessity,\n\
         measured."
    );
}
