//! Criterion bench behind E3 (Table 3): full-round cost of each protocol
//! at several committee sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prft_baselines::{hotstuff, pbft};
use prft_core::{Harness, NetworkChoice};
use prft_sim::{SimTime, Simulation};

fn bench_protocol_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_round");
    group.sample_size(10);
    for n in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("prft", n), &n, |b, &n| {
            b.iter(|| {
                let mut sim = Harness::new(n, 7)
                    .network(NetworkChoice::Synchronous { delta: SimTime(10) })
                    .max_rounds(1)
                    .build();
                sim.run_until(SimTime(100_000));
                assert!(sim.node(prft_types::NodeId(0)).chain().final_height() >= 1);
            })
        });
        group.bench_with_input(BenchmarkId::new("pbft", n), &n, |b, &n| {
            b.iter(|| {
                let cfg = pbft::PbftConfig::new(n, 1);
                let (replicas, _) = pbft::committee(&cfg, 1, &vec![pbft::PbftMode::Honest; n]);
                let mut sim = Simulation::new(
                    replicas,
                    Box::new(prft_net::SynchronousNet::new(SimTime(10))),
                    7,
                );
                sim.run_until(SimTime(100_000));
            })
        });
        group.bench_with_input(BenchmarkId::new("polygraph", n), &n, |b, &n| {
            b.iter(|| {
                let cfg = pbft::PbftConfig::new(n, 1).accountable();
                let (replicas, _) = pbft::committee(&cfg, 1, &vec![pbft::PbftMode::Honest; n]);
                let mut sim = Simulation::new(
                    replicas,
                    Box::new(prft_net::SynchronousNet::new(SimTime(10))),
                    7,
                );
                sim.run_until(SimTime(100_000));
            })
        });
        group.bench_with_input(BenchmarkId::new("hotstuff", n), &n, |b, &n| {
            b.iter(|| {
                let cfg = hotstuff::HsConfig::new(n, 1);
                let mut sim = Simulation::new(
                    hotstuff::committee(&cfg, 11),
                    Box::new(prft_net::SynchronousNet::new(SimTime(10))),
                    7,
                );
                sim.run_until(SimTime(100_000));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_protocol_round);
criterion_main!(benches);
