//! Criterion bench behind E9 (Figure 4): ConstructProof cost vs input size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prft_core::{construct_proof, signed_ballot, Phase};
use prft_crypto::KeyRegistry;
use prft_types::{Digest, Round};

fn bench_construct_proof(c: &mut Criterion) {
    let mut group = c.benchmark_group("construct_proof");
    for n in [16usize, 64, 256] {
        let (_, keys) = KeyRegistry::trusted_setup(n, 1);
        let va = Digest::of_bytes(b"a");
        let vb = Digest::of_bytes(b"b");
        // Every fourth player double-signs.
        let mut ballots = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            ballots.push(signed_ballot(key, Round(1), Phase::Commit, va));
            if i % 4 == 0 {
                ballots.push(signed_ballot(key, Round(1), Phase::Commit, vb));
            }
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &ballots, |b, ballots| {
            b.iter(|| {
                let proof = construct_proof(ballots.iter());
                assert_eq!(proof.len(), n.div_ceil(4));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_construct_proof);
criterion_main!(benches);
