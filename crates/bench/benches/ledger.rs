//! Criterion bench: chain/ledger operations (append, finalize, prefix
//! checks) — the data-structure hot path of every replica.

use criterion::{criterion_group, criterion_main, Criterion};
use prft_types::{Block, Chain, Height, NodeId, Round, Transaction};

fn grown(rounds: u64) -> Chain {
    let mut c = Chain::new(Block::genesis());
    for r in 0..rounds {
        let txs = (0..8)
            .map(|i| Transaction::new(r * 8 + i, NodeId(0), vec![0u8; 64]))
            .collect();
        let b = Block::new(Round(r + 1), c.tip(), NodeId((r % 7) as usize), txs);
        c.append_tentative(b).unwrap();
    }
    c
}

fn bench_chain_ops(c: &mut Criterion) {
    c.bench_function("chain_append_100", |b| b.iter(|| grown(100)));
    let chain = grown(500);
    c.bench_function("chain_finalize_500", |b| {
        b.iter(|| {
            let mut ch = chain.clone();
            ch.finalize_upto(Height(500)).unwrap();
        })
    });
    let other = chain.drop_suffix(50);
    c.bench_function("chain_common_prefix_500", |b| {
        b.iter(|| assert_eq!(chain.common_prefix_len(&other), 451))
    });
    c.bench_function("chain_c_strict_ordering_500", |b| {
        b.iter(|| assert!(Chain::c_strict_ordering(&chain, &other, 1)))
    });
}

criterion_group!(benches, bench_chain_ops);
criterion_main!(benches);
