//! Criterion bench: the crypto substrate (SHA-256, sign, verify).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use prft_core::{signed_ballot, Phase};
use prft_crypto::{KeyRegistry, Sha256};
use prft_types::{Digest, Round};

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xabu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("{size}B"), |b| b.iter(|| Sha256::digest(&data)));
    }
    group.finish();
}

fn bench_sign_verify(c: &mut Criterion) {
    let (registry, keys) = KeyRegistry::trusted_setup(4, 1);
    c.bench_function("sign_ballot", |b| {
        b.iter(|| signed_ballot(&keys[0], Round(1), Phase::Vote, Digest::of_bytes(b"v")))
    });
    let ballot = signed_ballot(&keys[0], Round(1), Phase::Vote, Digest::of_bytes(b"v"));
    c.bench_function("verify_ballot", |b| {
        b.iter(|| assert!(ballot.verify(&registry)))
    });
}

criterion_group!(benches, bench_sha256, bench_sign_verify);
criterion_main!(benches);
