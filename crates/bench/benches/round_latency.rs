//! Criterion bench: simulated rounds per second for pRFT (including the
//! whole discrete-event machinery) and the view-change path.

use criterion::{criterion_group, criterion_main, Criterion};
use prft_core::{Harness, NetworkChoice};
use prft_sim::SimTime;
use prft_types::NodeId;

fn bench_happy_rounds(c: &mut Criterion) {
    c.bench_function("prft_5rounds_n8", |b| {
        b.iter(|| {
            let mut sim = Harness::new(8, 7)
                .network(NetworkChoice::Synchronous { delta: SimTime(10) })
                .max_rounds(5)
                .build();
            sim.run_until(SimTime(1_000_000));
            assert_eq!(sim.node(NodeId(0)).chain().final_height(), 5);
        })
    });
}

fn bench_view_change_round(c: &mut Criterion) {
    c.bench_function("prft_viewchange_n8", |b| {
        b.iter(|| {
            // Crashed leader for round 0: the run must recover via view
            // change and still finalize two blocks.
            let mut sim = Harness::new(8, 7)
                .network(NetworkChoice::Synchronous { delta: SimTime(10) })
                .max_rounds(3)
                .build();
            sim.crash(NodeId(0));
            sim.run_until(SimTime(1_000_000));
            assert!(sim.node(NodeId(1)).chain().final_height() >= 2);
        })
    });
}

criterion_group!(benches, bench_happy_rounds, bench_view_change_round);
criterion_main!(benches);
