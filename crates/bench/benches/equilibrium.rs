//! Criterion bench: empirical-game exploration cost (TRAP game, Theorem 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use prft_baselines::trap::{TrapGame, TrapStrategy};
use prft_game::{EmpiricalGame, UtilityParams};

fn bench_trap_game(c: &mut Criterion) {
    let mut group = c.benchmark_group("trap_equilibria");
    for k in [3usize, 6, 9] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let game = TrapGame::new(30, 6, k, UtilityParams::default());
            let strategies = [TrapStrategy::Fork, TrapStrategy::Bait];
            b.iter(|| {
                let eg = EmpiricalGame::explore(vec![2; k], |profile| {
                    let chosen: Vec<TrapStrategy> =
                        profile.iter().map(|&i| strategies[i]).collect();
                    game.play(&chosen).utilities
                });
                eg.nash_equilibria(1e-9).len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trap_game);
criterion_main!(benches);
