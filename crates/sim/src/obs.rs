//! Deterministic observability: counter registry, cross-crate hot-path
//! hooks, and feature-gated wall-clock profiling.
//!
//! The paper's cost claims (Table 3: `O(n³)` messages, `O(κ·n⁴)` bits; the
//! accountable path's `O(n³κ)` Reveal payloads) are only actionable if a
//! run can *report* where those costs land. This module provides three
//! layers, all deterministic where they need to be:
//!
//! 1. [`ObsRegistry`] — named monotone counters and high-water gauges.
//!    Registries merge order-independently (counters add, gauges max), so
//!    a batch aggregated over seeds is byte-identical at any `--threads`
//!    and across queue backends.
//! 2. [`hooks`] — thread-local `Cell<u64>` counters incremented from hot
//!    paths in *other* crates (`prft-crypto` signature verification, the
//!    engine's broadcast clones) without threading `&mut` state through
//!    every call site. Each seeded run executes entirely on one worker
//!    thread, so `reset()` before / `snapshot()` after a run yields exact
//!    per-run deltas.
//! 3. [`timed`] — scoped wall-clock timers compiled to plain closure calls
//!    unless the `profiling` cargo feature is on. Wall-clock numbers are
//!    inherently nondeterministic, so they never enter reports — only the
//!    explicitly wall-clock `prft-bench profile` table.

use std::cell::Cell;
use std::collections::BTreeMap;

/// Named monotone counters and high-water gauges for one run (or an
/// order-independent aggregate of many runs).
///
/// Keys are dotted paths (`crypto.sig_verifies`, `recv.P3.Vote.msgs`);
/// iteration order is always alphabetical, so rendering a registry is
/// deterministic. See `docs/OBSERVABILITY.md` for the full catalog.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ObsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, u64>,
}

impl ObsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ObsRegistry::default()
    }

    /// Adds `delta` to the monotone counter `name` (creating it at zero).
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Raises the gauge `name` to `value` if that is a new high-water mark.
    pub fn gauge_max(&mut self, name: &str, value: u64) {
        let g = self.gauges.entry(name.to_string()).or_insert(0);
        *g = (*g).max(value);
    }

    /// Current value of a counter (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge (zero if never touched).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Merges `other` into `self`: counters add, gauges take the max.
    ///
    /// Merging is commutative and associative, which is what makes the
    /// aggregated `observability` report section independent of worker
    /// scheduling.
    pub fn merge(&mut self, other: &ObsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let g = self.gauges.entry(k.clone()).or_insert(0);
            *g = (*g).max(*v);
        }
    }

    /// Iterates counters in alphabetical key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates gauges in alphabetical key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Whether no counter or gauge has ever been touched.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty()
    }
}

/// Thread-local hot-path counters incremented from other crates.
///
/// These exist so that `KeyRegistry::verify` (called up to ~10⁸ times at
/// accountable n=128) pays one `Cell` increment — no allocation, no map
/// lookup, no `&mut` plumbing. The batch runner processes each seeded run
/// entirely inside one closure on one thread, so the reset/snapshot
/// discipline in `run_one` captures exact per-run deltas.
pub mod hooks {
    use super::Cell;

    thread_local! {
        static SIG_VERIFIES: Cell<u64> = const { Cell::new(0) };
        static CLONE_BYTES: Cell<u64> = const { Cell::new(0) };
        static MEMO_HITS: Cell<u64> = const { Cell::new(0) };
        static MEMO_MISSES: Cell<u64> = const { Cell::new(0) };
    }

    /// Point-in-time copy of this thread's hook counters.
    ///
    /// Values are cumulative since the last [`reset`] on the same thread.
    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    pub struct HookSnapshot {
        /// Signature verifications performed (`KeyRegistry::verify` calls),
        /// plus verifications *answered from* a memo cache — the logical
        /// verify count, identical across `VerifyMode`s.
        pub sig_verifies: u64,
        /// Wire bytes of message payloads cloned for broadcast fan-out.
        pub clone_bytes: u64,
        /// Logical verifications answered from a verification memo cache
        /// (no hash computed). Zero on the reference path.
        pub memo_hits: u64,
        /// Memo-cache lookups that fell through to a real verification —
        /// the count of *distinct-content* verifications actually done.
        pub memo_misses: u64,
    }

    /// Counts one signature verification. Called by `prft-crypto`.
    #[inline]
    pub fn count_sig_verify() {
        SIG_VERIFIES.with(|c| c.set(c.get() + 1));
    }

    /// Accounts `k` logical signature verifications at once. Used when a
    /// memo-cache hit stands in for `k` stored verifications: one batched
    /// add instead of `k` cell bumps keeps the fast path fast while the
    /// logical `sig_verifies` total stays identical to the slow path.
    #[inline]
    pub fn add_sig_verifies(k: u64) {
        SIG_VERIFIES.with(|c| c.set(c.get() + k));
    }

    /// Accounts `bytes` of payload cloned for a broadcast copy. Called by
    /// the engine's `Context::broadcast`/`broadcast_others`.
    #[inline]
    pub fn add_clone_bytes(bytes: u64) {
        CLONE_BYTES.with(|c| c.set(c.get() + bytes));
    }

    /// Accounts `k` memo-cache hits (logical verifies answered cached).
    #[inline]
    pub fn add_memo_hits(k: u64) {
        MEMO_HITS.with(|c| c.set(c.get() + k));
    }

    /// Accounts `k` memo-cache misses (verifications really performed).
    #[inline]
    pub fn add_memo_misses(k: u64) {
        MEMO_MISSES.with(|c| c.set(c.get() + k));
    }

    /// Reads this thread's current hook counters.
    pub fn snapshot() -> HookSnapshot {
        HookSnapshot {
            sig_verifies: SIG_VERIFIES.with(|c| c.get()),
            clone_bytes: CLONE_BYTES.with(|c| c.get()),
            memo_hits: MEMO_HITS.with(|c| c.get()),
            memo_misses: MEMO_MISSES.with(|c| c.get()),
        }
    }

    /// Zeroes this thread's hook counters (call before a measured run).
    pub fn reset() {
        SIG_VERIFIES.with(|c| c.set(0));
        CLONE_BYTES.with(|c| c.set(0));
        MEMO_HITS.with(|c| c.set(0));
        MEMO_MISSES.with(|c| c.set(0));
    }

    /// Overwrites this thread's hook counters with a previously captured
    /// [`HookSnapshot`] — the hook half of checkpoint restore. A forked
    /// run calls `restore(prefix_hooks)` where a fresh run would call
    /// [`reset`], so the counters resume exactly where the prefix left
    /// them and the post-run [`snapshot`] delta matches an uninterrupted
    /// run's.
    pub fn restore(s: HookSnapshot) {
        SIG_VERIFIES.with(|c| c.set(s.sig_verifies));
        CLONE_BYTES.with(|c| c.set(s.clone_bytes));
        MEMO_HITS.with(|c| c.set(s.memo_hits));
        MEMO_MISSES.with(|c| c.set(s.memo_misses));
    }
}

/// Wall-clock statistics for one named scope.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TimerStat {
    /// Number of [`timed`] invocations of this scope.
    pub calls: u64,
    /// Total inclusive wall-clock nanoseconds across those calls (nested
    /// scopes are counted in their parents too).
    pub total_ns: u64,
}

#[cfg(feature = "profiling")]
mod profiling_impl {
    use super::TimerStat;
    use std::cell::RefCell;
    use std::collections::BTreeMap;

    thread_local! {
        static TIMERS: RefCell<BTreeMap<&'static str, TimerStat>> =
            RefCell::new(BTreeMap::new());
    }

    pub fn record(name: &'static str, ns: u64) {
        TIMERS.with(|t| {
            let mut map = t.borrow_mut();
            let e = map.entry(name).or_default();
            e.calls += 1;
            e.total_ns += ns;
        });
    }

    pub fn snapshot() -> Vec<(&'static str, TimerStat)> {
        TIMERS.with(|t| t.borrow().iter().map(|(k, v)| (*k, *v)).collect())
    }

    pub fn reset() {
        TIMERS.with(|t| t.borrow_mut().clear());
    }
}

/// Runs `f`, attributing its wall-clock time to the scope `name`.
///
/// With the `profiling` cargo feature disabled (the default) this is a
/// `#[inline(always)]` pass-through — the closure is called directly and
/// nothing is recorded, so hot paths pay nothing.
#[cfg(not(feature = "profiling"))]
#[inline(always)]
pub fn timed<T>(_name: &'static str, f: impl FnOnce() -> T) -> T {
    f()
}

/// Runs `f`, attributing its wall-clock time to the scope `name`.
///
/// The `profiling` feature is enabled: two `Instant` reads bracket the
/// call and the elapsed nanoseconds accumulate in a thread-local table
/// readable via [`profile_snapshot`].
#[cfg(feature = "profiling")]
pub fn timed<T>(name: &'static str, f: impl FnOnce() -> T) -> T {
    let start = std::time::Instant::now();
    let out = f();
    let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    profiling_impl::record(name, ns);
    out
}

/// Whether this build records wall-clock scopes (`profiling` feature).
pub fn profiling_enabled() -> bool {
    cfg!(feature = "profiling")
}

/// This thread's accumulated timer table, alphabetical by scope name.
/// Always empty when the `profiling` feature is disabled.
pub fn profile_snapshot() -> Vec<(&'static str, TimerStat)> {
    #[cfg(feature = "profiling")]
    {
        profiling_impl::snapshot()
    }
    #[cfg(not(feature = "profiling"))]
    {
        Vec::new()
    }
}

/// Clears this thread's timer table (no-op when profiling is disabled).
pub fn profile_reset() {
    #[cfg(feature = "profiling")]
    profiling_impl::reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_gauges_take_max() {
        let mut r = ObsRegistry::new();
        r.add("a.count", 2);
        r.add("a.count", 3);
        r.gauge_max("a.peak", 7);
        r.gauge_max("a.peak", 4);
        assert_eq!(r.counter("a.count"), 5);
        assert_eq!(r.gauge("a.peak"), 7);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge("missing"), 0);
    }

    #[test]
    fn merge_is_order_independent() {
        let mut a = ObsRegistry::new();
        a.add("x", 1);
        a.gauge_max("g", 10);
        let mut b = ObsRegistry::new();
        b.add("x", 2);
        b.add("y", 5);
        b.gauge_max("g", 3);

        let mut ab = ObsRegistry::new();
        ab.merge(&a);
        ab.merge(&b);
        let mut ba = ObsRegistry::new();
        ba.merge(&b);
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("x"), 3);
        assert_eq!(ab.counter("y"), 5);
        assert_eq!(ab.gauge("g"), 10);
    }

    #[test]
    fn iteration_is_alphabetical() {
        let mut r = ObsRegistry::new();
        r.add("b", 1);
        r.add("a", 1);
        r.gauge_max("z", 1);
        r.gauge_max("m", 1);
        let ks: Vec<&str> = r.counters().map(|(k, _)| k).collect();
        assert_eq!(ks, vec!["a", "b"]);
        let gs: Vec<&str> = r.gauges().map(|(k, _)| k).collect();
        assert_eq!(gs, vec!["m", "z"]);
        assert!(!r.is_empty());
        assert!(ObsRegistry::new().is_empty());
    }

    #[test]
    fn hook_reset_and_snapshot_round_trip() {
        hooks::reset();
        hooks::count_sig_verify();
        hooks::count_sig_verify();
        hooks::add_clone_bytes(100);
        hooks::add_memo_hits(3);
        hooks::add_memo_misses(4);
        let s = hooks::snapshot();
        assert_eq!(s.sig_verifies, 2);
        assert_eq!(s.clone_bytes, 100);
        assert_eq!(s.memo_hits, 3);
        assert_eq!(s.memo_misses, 4);
        hooks::reset();
        assert_eq!(hooks::snapshot(), hooks::HookSnapshot::default());
    }

    #[test]
    fn batched_sig_verify_adds_match_single_counts() {
        hooks::reset();
        hooks::count_sig_verify();
        hooks::add_sig_verifies(41);
        assert_eq!(hooks::snapshot().sig_verifies, 42);
        hooks::reset();
    }

    #[test]
    fn timed_returns_the_closure_value() {
        profile_reset();
        let v = timed("obs_test_scope", || 21 * 2);
        assert_eq!(v, 42);
    }

    #[cfg(not(feature = "profiling"))]
    #[test]
    fn disabled_profiling_records_nothing() {
        // The zero-overhead contract: with the feature off, `timed` is a
        // pass-through and the snapshot stays empty no matter how many
        // scopes run.
        profile_reset();
        for _ in 0..10 {
            timed("obs_test_noop", || ());
        }
        assert!(!profiling_enabled());
        assert!(profile_snapshot().is_empty());
    }

    #[cfg(feature = "profiling")]
    #[test]
    fn enabled_profiling_records_calls() {
        profile_reset();
        timed("obs_test_hot", || std::hint::black_box(1 + 1));
        timed("obs_test_hot", || std::hint::black_box(2 + 2));
        assert!(profiling_enabled());
        let snap = profile_snapshot();
        let (_, stat) = snap
            .iter()
            .find(|(k, _)| *k == "obs_test_hot")
            .expect("scope recorded");
        assert_eq!(stat.calls, 2);
    }
}
