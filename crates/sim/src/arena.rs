//! Slab arena for in-flight message payloads.
//!
//! The event queue used to carry every `N::Msg` inline, so each heap
//! sift-up moved whole protocol messages (blocks, signatures, payload
//! bytes) around memory, and every push/pop churned the allocator at
//! large n. Instead, the engine now parks the payload in an [`Arena`] and
//! queues a 4-byte [`MsgRef`]; events become small PODs whatever the
//! protocol's message type, and freed slots are recycled so steady-state
//! traffic allocates nothing.
//!
//! The arena is strictly engine-internal bookkeeping: a message is
//! inserted when its delivery event is scheduled and taken exactly once
//! when the event is dispatched (or discarded for a crashed receiver), so
//! occupancy equals the number of in-flight deliveries.

/// Handle to a parked message (index into the arena's slot table).
///
/// `u32` bounds *live* messages at ~4 billion; queue depth is ~n², so even
/// the largest committees stay far below that.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgRef(u32);

/// A slab of `M` with free-list recycling.
///
/// `Clone` (for `M: Clone`) copies slots *and* free-list verbatim, so a
/// cloned arena honours every outstanding [`MsgRef`] and hands out the
/// same slot indices for future inserts — required for checkpoint/fork
/// equivalence.
#[derive(Debug, Clone)]
pub struct Arena<M> {
    slots: Vec<Option<M>>,
    free: Vec<u32>,
}

impl<M> Arena<M> {
    /// An empty arena.
    pub fn new() -> Self {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Parks `msg`, returning its handle. Reuses a freed slot when one
    /// exists; only grows when occupancy hits a new high-water mark.
    pub fn insert(&mut self, msg: M) -> MsgRef {
        match self.free.pop() {
            Some(idx) => {
                debug_assert!(self.slots[idx as usize].is_none(), "free slot occupied");
                self.slots[idx as usize] = Some(msg);
                MsgRef(idx)
            }
            None => {
                let idx = u32::try_from(self.slots.len()).expect("arena capacity exceeded u32");
                self.slots.push(Some(msg));
                MsgRef(idx)
            }
        }
    }

    /// Takes the message back out, freeing its slot for reuse.
    ///
    /// # Panics
    /// Panics if the handle was already taken (every handle is
    /// single-use).
    pub fn take(&mut self, r: MsgRef) -> M {
        let msg = self.slots[r.0 as usize]
            .take()
            .expect("message taken twice or never parked");
        self.free.push(r.0);
        msg
    }

    /// Number of currently parked messages.
    pub fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Whether no message is parked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-water mark: the most slots the arena has ever needed at once.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

impl<M> Default for Arena<M> {
    fn default() -> Self {
        Arena::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_take_round_trips() {
        let mut a = Arena::new();
        let x = a.insert("x");
        let y = a.insert("y");
        assert_eq!(a.len(), 2);
        assert_eq!(a.take(x), "x");
        assert_eq!(a.take(y), "y");
        assert!(a.is_empty());
    }

    #[test]
    fn slots_are_recycled() {
        let mut a = Arena::new();
        let x = a.insert(1u32);
        a.take(x);
        let y = a.insert(2);
        // The freed slot was reused: no capacity growth.
        assert_eq!(a.capacity(), 1);
        assert_eq!(a.take(y), 2);
    }

    #[test]
    #[should_panic(expected = "taken twice")]
    fn double_take_panics() {
        let mut a = Arena::new();
        let x = a.insert(7u8);
        a.take(x);
        a.take(x);
    }
}
