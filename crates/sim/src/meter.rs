//! Message metering: per-kind counts and byte totals.
//!
//! The paper's Table 3 reports message complexity (`O(n³)`) and message size
//! (`O(κ·n⁴)`). Every protocol message type implements [`WireMessage`] so
//! the engine can account counts and bytes without the protocol's help.

use std::collections::BTreeMap;

/// A message that can be metered on the wire.
pub trait WireMessage {
    /// A short static label ("Propose", "Vote", …) used for grouping.
    fn kind(&self) -> &'static str;
    /// Wire size in bytes. Signatures count κ bytes each
    /// (`prft_crypto::KAPPA`); certificates count the sum of their parts.
    fn wire_bytes(&self) -> usize;
    /// Bytes this process actually copies when the engine clones the
    /// message for broadcast fan-out. Defaults to [`wire_bytes`]: a plain
    /// value clones its full wire size. Messages whose certificate bodies
    /// are behind `Arc`s override this with the handle cost (8 bytes per
    /// shared body), which is what the `engine.clone_bytes` counter then
    /// records — wire accounting (`send.*`/`recv.*`) is untouched, since
    /// a real network would still ship the full payload.
    ///
    /// [`wire_bytes`]: WireMessage::wire_bytes
    fn clone_cost_bytes(&self) -> usize {
        self.wire_bytes()
    }
}

/// Counters for a single message kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KindStats {
    /// Number of point-to-point deliveries of this kind.
    pub count: u64,
    /// Total wire bytes across those deliveries.
    pub bytes: u64,
}

/// Aggregated meter over a simulation run.
#[derive(Debug, Clone, Default)]
pub struct Meter {
    kinds: BTreeMap<&'static str, KindStats>,
}

impl Meter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Meter::default()
    }

    /// Records one point-to-point send of `bytes` for `kind`.
    pub fn record(&mut self, kind: &'static str, bytes: usize) {
        let e = self.kinds.entry(kind).or_default();
        e.count += 1;
        e.bytes += bytes as u64;
    }

    /// Stats for one kind (zero if never seen).
    pub fn kind(&self, kind: &str) -> KindStats {
        self.kinds.get(kind).copied().unwrap_or_default()
    }

    /// Total messages across all kinds.
    pub fn total_messages(&self) -> u64 {
        self.kinds.values().map(|s| s.count).sum()
    }

    /// Total bytes across all kinds.
    pub fn total_bytes(&self) -> u64 {
        self.kinds.values().map(|s| s.bytes).sum()
    }

    /// Iterates kinds in stable (alphabetical) order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, KindStats)> + '_ {
        self.kinds.iter().map(|(k, v)| (*k, *v))
    }

    /// Resets all counters (e.g. between warm-up and measured rounds).
    pub fn reset(&mut self) {
        self.kinds.clear();
    }

    /// Merges another meter into this one.
    pub fn merge(&mut self, other: &Meter) {
        for (k, s) in other.iter() {
            let e = self.kinds.entry(k).or_default();
            e.count += s.count;
            e.bytes += s.bytes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut m = Meter::new();
        m.record("Vote", 10);
        m.record("Vote", 20);
        m.record("Commit", 5);
        assert_eq!(
            m.kind("Vote"),
            KindStats {
                count: 2,
                bytes: 30
            }
        );
        assert_eq!(m.total_messages(), 3);
        assert_eq!(m.total_bytes(), 35);
    }

    #[test]
    fn unknown_kind_is_zero() {
        let m = Meter::new();
        assert_eq!(m.kind("Nope"), KindStats::default());
    }

    #[test]
    fn iteration_is_stable() {
        let mut m = Meter::new();
        m.record("b", 1);
        m.record("a", 1);
        let kinds: Vec<&str> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(kinds, vec!["a", "b"]);
    }

    #[test]
    fn merge_and_reset() {
        let mut a = Meter::new();
        a.record("x", 1);
        let mut b = Meter::new();
        b.record("x", 2);
        b.record("y", 3);
        a.merge(&b);
        assert_eq!(a.kind("x"), KindStats { count: 2, bytes: 3 });
        a.reset();
        assert_eq!(a.total_messages(), 0);
    }
}
