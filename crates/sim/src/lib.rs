//! Deterministic discrete-event simulation kernel.
//!
//! The paper evaluates protocols over `n` communicating players under
//! synchronous / partially synchronous / asynchronous networks. This crate
//! provides the substrate those runs execute on:
//!
//! * a seeded, reproducible PRNG ([`SimRng`], SplitMix64 → Xoshiro256**);
//! * virtual time ([`SimTime`]) and a totally ordered, **pluggable** event
//!   queue ([`EventQueue`]: the reference [`HeapQueue`] and the fast
//!   [`CalendarQueue`], selected by [`QueueBackend`]) with in-flight
//!   message payloads parked in an [`Arena`] — two runs with the same seed
//!   produce byte-identical traces, whichever backend drains them;
//! * the [`Node`] trait protocols implement, with a [`Context`] for sending,
//!   broadcasting, and timer management;
//! * message metering (per-kind counts and κ-scaled byte sizes via
//!   [`WireMessage`]) and an optional message [`Trace`] used to regenerate
//!   the paper's Figure 2a timeline;
//! * deterministic observability ([`obs`]): a named counter/gauge registry
//!   ([`ObsRegistry`]), thread-local hot-path hooks, a [`ChromeTrace`]
//!   exporter for Perfetto, and wall-clock scopes behind the `profiling`
//!   cargo feature;
//! * crash support (for the CFT column of Table 1).
//!
//! Delay behaviour is pluggable through [`LinkModel`]; the concrete
//! synchronous / partially synchronous (GST) / asynchronous models and
//! partitions live in `prft-net`.
//!
//! # Example: two-node ping-pong
//!
//! ```
//! use prft_sim::{Context, LinkModel, Node, Simulation, SimTime, TimerId, WireMessage};
//! use prft_types::NodeId;
//!
//! #[derive(Clone, Debug)]
//! struct Ping(u32);
//! impl WireMessage for Ping {
//!     fn kind(&self) -> &'static str { "ping" }
//!     fn wire_bytes(&self) -> usize { 4 }
//! }
//!
//! struct Player { hits: u32 }
//! impl Node for Player {
//!     type Msg = Ping;
//!     fn on_start(&mut self, ctx: &mut Context<Ping>) {
//!         if ctx.me() == NodeId(0) { ctx.send(NodeId(1), Ping(0)); }
//!     }
//!     fn on_message(&mut self, ctx: &mut Context<Ping>, from: NodeId, msg: Ping) {
//!         self.hits += 1;
//!         if msg.0 < 3 { ctx.send(from, Ping(msg.0 + 1)); }
//!     }
//!     fn on_timer(&mut self, _: &mut Context<Ping>, _: TimerId) {}
//! }
//!
//! let mut sim = Simulation::new(
//!     vec![Player { hits: 0 }, Player { hits: 0 }],
//!     Box::new(prft_sim::ConstantDelay(SimTime(1))),
//!     42,
//! );
//! sim.run();
//! assert_eq!(sim.node(NodeId(0)).hits + sim.node(NodeId(1)).hits, 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod engine;
mod meter;
pub mod obs;
pub mod queue;
mod rng;
mod time;
mod trace;

pub use arena::{Arena, MsgRef};
pub use engine::{Context, LinkModel, Node, RunOutcome, SimSnapshot, Simulation, TimerId};
pub use meter::{KindStats, Meter, WireMessage};
pub use obs::ObsRegistry;
pub use queue::{CalendarQueue, EventQueue, HeapQueue, QueueBackend};
pub use rng::SimRng;
pub use time::SimTime;
pub use trace::{ChromeTrace, Trace, TraceEntry};

/// The trivial link model: every message arrives exactly `0.0 + d` later.
///
/// Useful for unit tests; real experiments use the models in `prft-net`.
#[derive(Debug, Clone, Copy)]
pub struct ConstantDelay(pub SimTime);

impl LinkModel for ConstantDelay {
    fn deliver_at(
        &mut self,
        _from: prft_types::NodeId,
        _to: prft_types::NodeId,
        sent: SimTime,
        _rng: &mut SimRng,
    ) -> SimTime {
        SimTime(sent.0 + self.0 .0)
    }
}
