//! Virtual time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in abstract "ticks".
///
/// Experiments interpret one tick as one millisecond, but nothing in the
/// kernel depends on the unit. `SimTime` is also used for durations (the
/// type is affine enough for a simulator; keeping one type avoids a
/// proliferation of conversions in protocol code).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable time (used as an "infinite" horizon).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Saturating addition.
    #[must_use]
    pub fn saturating_add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }

    /// The later of two times.
    #[must_use]
    pub fn max(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.max(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl From<u64> for SimTime {
    fn from(v: u64) -> Self {
        SimTime(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        assert_eq!(SimTime(3) + SimTime(4), SimTime(7));
        assert_eq!(SimTime(4) - SimTime(3), SimTime(1));
        assert_eq!(SimTime(3) - SimTime(4), SimTime(0), "saturating sub");
        assert_eq!(SimTime::MAX.saturating_add(SimTime(1)), SimTime::MAX);
    }

    #[test]
    fn ordering() {
        assert!(SimTime(1) < SimTime(2));
        assert_eq!(SimTime(5).max(SimTime(3)), SimTime(5));
    }
}
