//! Pluggable event-queue backends for the simulation engine.
//!
//! Every run drains one totally ordered queue of `(time, seq)`-keyed
//! events — the hot path under every scenario, sweep, and explorer cell.
//! The [`EventQueue`] trait abstracts that queue so the engine can swap
//! implementations without touching dispatch, and two backends ship:
//!
//! * [`HeapQueue`] — the original `BinaryHeap`, kept as the reference
//!   implementation ("what the seed engine did, bit for bit");
//! * [`CalendarQueue`] — single-tick buckets over a lazily resized ring
//!   with a heap overflow for far-future events. Push and pop are O(1)
//!   amortized instead of O(log len), which is what lets large-n
//!   committees (n ≥ 128, queue depth ~n²) stop paying a ~16-level
//!   sift per event.
//!
//! Both backends implement the **exact same pop order** — earliest time
//! first, ties broken by insertion sequence — so a run's outputs are
//! byte-identical whichever backend drains it. That identity is pinned by
//! `crates/sim/tests/queue_equiv.rs` (differential property test) and by
//! the cross-backend determinism tests in `crates/scenarios`, and it is
//! why [`QueueBackend`] is deliberately *excluded* from the scenario
//! fingerprint: the knob selects an execution strategy, not a semantics.
//!
//! # Ordering contract
//!
//! Implementations may rely on how the engine drives them:
//!
//! 1. **Monotone time**: `push(at, ..)` is never called with `at` earlier
//!    than the time of the last popped entry (virtual time never rewinds).
//! 2. **Monotone sequence**: `seq` strictly increases across pushes (the
//!    engine's global event counter).
//!
//! Under those two rules a same-tick bucket receives entries in `seq`
//! order, so the calendar backend can use plain FIFO buckets.

use crate::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Which event-queue backend a simulation drains.
///
/// The choice never affects results — pop order is pinned identical across
/// backends — only speed, so it is excluded from spec fingerprints and
/// defaults to the fast path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QueueBackend {
    /// The reference `BinaryHeap` (O(log len) per operation).
    Heap,
    /// The calendar queue (O(1) amortized; the default).
    #[default]
    Calendar,
}

impl QueueBackend {
    /// Every backend, in a stable order (bench sweeps iterate this).
    pub const ALL: [QueueBackend; 2] = [QueueBackend::Heap, QueueBackend::Calendar];

    /// The CLI/report name of the backend.
    pub fn name(self) -> &'static str {
        match self {
            QueueBackend::Heap => "heap",
            QueueBackend::Calendar => "calendar",
        }
    }

    /// Parses a CLI/report name (`"heap"` / `"calendar"`).
    pub fn parse(s: &str) -> Option<QueueBackend> {
        match s {
            "heap" => Some(QueueBackend::Heap),
            "calendar" => Some(QueueBackend::Calendar),
            _ => None,
        }
    }

    /// Builds a boxed queue of this backend.
    pub fn build<T: Send + 'static>(self) -> Box<dyn EventQueue<T>> {
        match self {
            QueueBackend::Heap => Box::new(HeapQueue::new()),
            QueueBackend::Calendar => Box::new(CalendarQueue::new()),
        }
    }
}

impl std::fmt::Display for QueueBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A totally ordered event queue: pop-earliest by `(time, seq)`.
///
/// `Send` is a supertrait for the same reason as `LinkModel`'s: a boxed
/// queue (and with it a whole `Simulation`) is built on one thread and run
/// on another by the batch runner. See the module docs for the ordering
/// contract implementations may rely on.
pub trait EventQueue<T>: Send {
    /// Enqueues `item` keyed by `(at, seq)`.
    fn push(&mut self, at: SimTime, seq: u64, item: T);

    /// The key of the earliest pending entry, without removing it.
    /// (`&mut` so implementations may settle internal cursors.)
    fn peek_key(&mut self) -> Option<(SimTime, u64)>;

    /// Removes and returns the earliest entry: minimal `at`, ties broken
    /// by minimal `seq`.
    fn pop(&mut self) -> Option<(SimTime, u64, T)>;

    /// Number of pending entries.
    fn len(&self) -> usize;

    /// Whether the queue is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

struct HeapEntry<T> {
    at: SimTime,
    seq: u64,
    item: T,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first. Ties break
        // by insertion sequence so runs are fully deterministic.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The reference backend: a `BinaryHeap` keyed `(at, seq)`, exactly the
/// structure the engine used before queues became pluggable.
pub struct HeapQueue<T> {
    heap: BinaryHeap<HeapEntry<T>>,
}

impl<T> HeapQueue<T> {
    /// An empty heap queue.
    pub fn new() -> Self {
        HeapQueue {
            heap: BinaryHeap::new(),
        }
    }

    /// See [`EventQueue::push`] (inherent so internal callers need no
    /// `T: Send` bound).
    pub fn push(&mut self, at: SimTime, seq: u64, item: T) {
        self.heap.push(HeapEntry { at, seq, item });
    }

    /// See [`EventQueue::peek_key`].
    pub fn peek_key(&self) -> Option<(SimTime, u64)> {
        self.heap.peek().map(|e| (e.at, e.seq))
    }

    /// See [`EventQueue::pop`].
    pub fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        self.heap.pop().map(|e| (e.at, e.seq, e.item))
    }

    /// See [`EventQueue::len`].
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for HeapQueue<T> {
    fn default() -> Self {
        HeapQueue::new()
    }
}

impl<T: Send> EventQueue<T> for HeapQueue<T> {
    fn push(&mut self, at: SimTime, seq: u64, item: T) {
        HeapQueue::push(self, at, seq, item);
    }

    fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        HeapQueue::peek_key(self)
    }

    fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        HeapQueue::pop(self)
    }

    fn len(&self) -> usize {
        HeapQueue::len(self)
    }
}

/// Ring size the calendar starts with; lazy resize doubles from here.
const INITIAL_BUCKETS: usize = 1024;
/// Hard cap on the ring (2^16 single-tick buckets ≈ a couple of MB of
/// `VecDeque` headers); spans wider than this stay in the overflow heap.
const MAX_BUCKETS: usize = 1 << 16;

/// The fast backend: a ring of single-tick FIFO buckets covering the
/// window `[cursor, cursor + ring_len)`, plus a heap for events scheduled
/// beyond it.
///
/// * **push** — O(1): drop into `bucket[tick % ring_len]` when the tick is
///   inside the window, else into the overflow heap.
/// * **pop** — O(1) amortized: the cursor only moves forward (virtual time
///   is monotone), so each empty bucket is skipped at most once per tick
///   of simulated time; within a bucket, entries are already in `seq`
///   order (see the module ordering contract), so pop is `pop_front`.
/// * **lazy resize** — when the overflow heap outgrows the ring (the
///   pending-event span is wider than the window), the ring doubles (up
///   to `MAX_BUCKETS` = 2^16 slots) and everything is re-placed; amortized by the
///   doubling, and bucket storage is reused across wraps, so steady-state
///   operation allocates nothing.
pub struct CalendarQueue<T> {
    buckets: Vec<VecDeque<(SimTime, u64, T)>>,
    /// `buckets.len() - 1`; the ring length is a power of two.
    mask: u64,
    /// Absolute tick of the cursor; the window is `[window_start, window_start + buckets.len())`.
    window_start: u64,
    /// Entries currently held in ring buckets.
    in_window: usize,
    /// Entries outside the window: far-future ticks, plus the rare push
    /// *behind* the cursor (legal whenever its tick is at or after the
    /// last pop — e.g. `Simulation::inject` after a bounded run whose
    /// final peek settled the cursor on a later pending event). Peek/pop
    /// compare the overflow top against the bucket front, so such
    /// entries still come out in exact `(time, seq)` order.
    overflow: HeapQueue<T>,
    /// Time of the last popped entry — the floor the ordering contract
    /// puts under future pushes.
    last_popped: u64,
    len: usize,
}

impl<T> CalendarQueue<T> {
    /// An empty calendar queue with the default initial ring.
    pub fn new() -> Self {
        CalendarQueue::with_buckets(INITIAL_BUCKETS)
    }

    /// An empty calendar queue whose ring starts at `buckets` slots
    /// (rounded up to a power of two, clamped to the 2^16-slot cap).
    pub fn with_buckets(buckets: usize) -> Self {
        let n = buckets.next_power_of_two().clamp(2, MAX_BUCKETS);
        CalendarQueue {
            buckets: (0..n).map(|_| VecDeque::new()).collect(),
            mask: (n - 1) as u64,
            window_start: 0,
            in_window: 0,
            overflow: HeapQueue::new(),
            last_popped: 0,
            len: 0,
        }
    }

    /// Current ring size (test/bench introspection).
    pub fn ring_len(&self) -> usize {
        self.buckets.len()
    }

    fn in_ring_window(&self, at: SimTime) -> bool {
        at.0 >= self.window_start && at.0 - self.window_start < self.buckets.len() as u64
    }

    fn place(&mut self, at: SimTime, seq: u64, item: T) {
        if self.in_ring_window(at) {
            self.buckets[(at.0 & self.mask) as usize].push_back((at, seq, item));
            self.in_window += 1;
        } else {
            self.overflow.push(at, seq, item);
        }
    }

    /// Doubles the ring and re-places every entry. Entries are re-inserted
    /// in `(at, seq)` order so per-bucket FIFO stays sorted.
    fn grow(&mut self) {
        let new_len = (self.buckets.len() * 2).min(MAX_BUCKETS);
        if new_len == self.buckets.len() {
            return;
        }
        let mut all: Vec<(SimTime, u64, T)> = Vec::with_capacity(self.len);
        for bucket in &mut self.buckets {
            all.extend(bucket.drain(..));
        }
        while let Some(entry) = self.overflow.pop() {
            all.push(entry);
        }
        all.sort_unstable_by_key(|&(at, seq, _)| (at, seq));
        self.buckets = (0..new_len).map(|_| VecDeque::new()).collect();
        self.mask = (new_len - 1) as u64;
        self.in_window = 0;
        for (at, seq, item) in all {
            self.place(at, seq, item);
        }
    }

    /// Moves the cursor to the earliest non-empty bucket, pulling overflow
    /// entries into the ring as the window slides over them. After this
    /// returns (with `len > 0`), the front of `buckets[window_start %
    /// ring]` holds the earliest *in-window* entry; entries still in the
    /// overflow heap (behind the cursor or beyond the window) are compared
    /// against it by the caller, so the true global minimum always wins.
    fn settle(&mut self) {
        debug_assert!(self.len > 0);
        loop {
            // Window extension first: anything in overflow that the
            // current window covers belongs in a bucket. Overflow drains
            // in (at, seq) order, so per-bucket FIFO order is preserved;
            // a behind-cursor top stops the drain, which is fine — it
            // (and anything after it) pops straight from the heap via
            // the peek/pop comparison instead.
            while let Some((at, _)) = self.overflow.peek_key() {
                if !self.in_ring_window(at) {
                    break;
                }
                let (at, seq, item) = self.overflow.pop().expect("peeked");
                self.buckets[(at.0 & self.mask) as usize].push_back((at, seq, item));
                self.in_window += 1;
            }
            if self.in_window == 0 {
                // Ring is empty: jump the window straight to the earliest
                // overflow entry — forward past empty ticks, or (rarely)
                // backward to a behind-cursor push. Rewinding with empty
                // buckets is safe: slot ↔ tick stays unique.
                let Some((at, _)) = self.overflow.peek_key() else {
                    unreachable!("len > 0 with empty ring and empty overflow");
                };
                self.window_start = at.0;
                continue;
            }
            if !self.buckets[(self.window_start & self.mask) as usize].is_empty() {
                return;
            }
            self.window_start += 1;
        }
    }

    /// After [`CalendarQueue::settle`]: whether the next pop comes from
    /// the overflow heap (a behind-cursor entry) rather than the cursor
    /// bucket. Ticks can never tie — overflow holds only ticks strictly
    /// before the cursor or at/after the window end.
    fn overflow_wins(&self) -> bool {
        match (
            self.overflow.peek_key(),
            self.buckets[(self.window_start & self.mask) as usize].front(),
        ) {
            (Some((o_at, o_seq)), Some(&(b_at, b_seq, _))) => (o_at, o_seq) < (b_at, b_seq),
            (Some(_), None) => unreachable!("settle leaves the cursor on a non-empty bucket"),
            _ => false,
        }
    }
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        CalendarQueue::new()
    }
}

impl<T: Send> EventQueue<T> for CalendarQueue<T> {
    fn push(&mut self, at: SimTime, seq: u64, item: T) {
        debug_assert!(
            at.0 >= self.last_popped,
            "push at {at:?} before the last popped tick ({}) violates the monotone-time contract",
            self.last_popped
        );
        self.len += 1;
        self.place(at, seq, item);
        // Lazy resize: a wider-than-window pending span shows up as the
        // overflow outgrowing the ring.
        if self.overflow.len() > self.buckets.len() && self.buckets.len() < MAX_BUCKETS {
            self.grow();
        }
    }

    fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        if self.len == 0 {
            return None;
        }
        self.settle();
        if self.overflow_wins() {
            return self.overflow.peek_key();
        }
        let front = self.buckets[(self.window_start & self.mask) as usize]
            .front()
            .expect("settled on a non-empty bucket");
        Some((front.0, front.1))
    }

    fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        if self.len == 0 {
            return None;
        }
        self.settle();
        let entry = if self.overflow_wins() {
            self.overflow.pop().expect("overflow_wins saw an entry")
        } else {
            let entry = self.buckets[(self.window_start & self.mask) as usize]
                .pop_front()
                .expect("settled on a non-empty bucket");
            self.in_window -= 1;
            entry
        };
        self.len -= 1;
        self.last_popped = entry.0 .0;
        Some(entry)
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<T>(q: &mut dyn EventQueue<T>) -> Vec<(SimTime, u64, T)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push(e);
        }
        out
    }

    #[test]
    fn backend_names_round_trip() {
        for b in QueueBackend::ALL {
            assert_eq!(QueueBackend::parse(b.name()), Some(b));
            assert_eq!(format!("{b}"), b.name());
        }
        assert_eq!(QueueBackend::parse("nope"), None);
        assert_eq!(QueueBackend::default(), QueueBackend::Calendar);
    }

    #[test]
    fn both_backends_pop_time_then_seq() {
        for backend in QueueBackend::ALL {
            let mut q = backend.build::<&'static str>();
            q.push(SimTime(5), 0, "early-seq-at-5");
            q.push(SimTime(1), 1, "t1");
            q.push(SimTime(5), 2, "late-seq-at-5");
            q.push(SimTime(0), 3, "t0");
            assert_eq!(q.len(), 4);
            assert_eq!(q.peek_key(), Some((SimTime(0), 3)));
            let order: Vec<&str> = drain(&mut *q).into_iter().map(|(_, _, x)| x).collect();
            assert_eq!(
                order,
                vec!["t0", "t1", "early-seq-at-5", "late-seq-at-5"],
                "{backend}"
            );
        }
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        for backend in QueueBackend::ALL {
            let mut q = backend.build::<u32>();
            q.push(SimTime(10), 0, 0);
            q.push(SimTime(20), 1, 1);
            assert_eq!(q.pop().unwrap(), (SimTime(10), 0, 0));
            // Push at the popped time (self-delivery) and beyond.
            q.push(SimTime(10), 2, 2);
            q.push(SimTime(15), 3, 3);
            let rest: Vec<u32> = drain(&mut *q).into_iter().map(|(_, _, x)| x).collect();
            assert_eq!(rest, vec![2, 3, 1], "{backend}");
        }
    }

    #[test]
    fn push_behind_a_settled_cursor_stays_ordered() {
        // Regression (PR-5 review): peeking settles the calendar cursor
        // on the earliest *pending* entry, which may sit later than the
        // last popped tick — and the ordering contract only floors pushes
        // at the last popped tick. A subsequent push behind the cursor
        // (legal, e.g. `Simulation::inject` after a bounded run) must
        // still pop first, exactly as the heap backend does.
        for backend in QueueBackend::ALL {
            let mut q = backend.build::<&'static str>();
            q.push(SimTime(100), 0, "late");
            assert_eq!(q.peek_key(), Some((SimTime(100), 0))); // settles cursor at 100
            q.push(SimTime(50), 1, "early");
            assert_eq!(q.peek_key(), Some((SimTime(50), 1)), "{backend}");
            let order: Vec<&str> = drain(&mut *q).into_iter().map(|(_, _, x)| x).collect();
            assert_eq!(order, vec!["early", "late"], "{backend}");
        }
        // Same shape with same-tick company behind the cursor and a
        // tighter ring (rewind + refill path).
        let mut q = CalendarQueue::with_buckets(4);
        q.push(SimTime(200), 0, 0u32);
        assert!(q.peek_key().is_some());
        q.push(SimTime(40), 1, 1);
        q.push(SimTime(40), 2, 2);
        q.push(SimTime(199), 3, 3);
        let order: Vec<u32> = drain(&mut q).into_iter().map(|(_, _, x)| x).collect();
        assert_eq!(order, vec![1, 2, 3, 0]);
    }

    #[test]
    fn calendar_handles_far_future_via_overflow() {
        let mut q = CalendarQueue::with_buckets(4);
        q.push(SimTime(0), 0, "now");
        q.push(SimTime(1_000_000), 1, "far");
        q.push(SimTime(2), 2, "soon");
        assert_eq!(q.pop().unwrap().2, "now");
        assert_eq!(q.pop().unwrap().2, "soon");
        // The window jumps to the overflow entry instead of walking
        // a million empty ticks.
        assert_eq!(q.pop().unwrap().2, "far");
        assert!(q.pop().is_none());
    }

    #[test]
    fn calendar_keeps_tick_fifo_across_overflow_migration() {
        // Entries for one far tick arrive via overflow *and* (after the
        // window slides) via direct pushes; pop order must stay seq order.
        let mut q = CalendarQueue::with_buckets(4);
        q.push(SimTime(100), 0, 0u32); // overflow (window is [0, 4))
        q.push(SimTime(100), 1, 1); // overflow too
        q.push(SimTime(0), 2, 2);
        assert_eq!(q.pop().unwrap(), (SimTime(0), 2, 2));
        assert_eq!(q.peek_key(), Some((SimTime(100), 0)));
        // Window now covers tick 100: a direct push lands behind the
        // migrated entries.
        q.push(SimTime(100), 3, 3);
        let order: Vec<u32> = drain(&mut q).into_iter().map(|(_, _, x)| x).collect();
        assert_eq!(order, vec![0, 1, 3]);
    }

    #[test]
    fn calendar_lazily_grows_its_ring() {
        let mut q = CalendarQueue::with_buckets(2);
        assert_eq!(q.ring_len(), 2);
        // A burst spread over many ticks overflows the tiny ring and
        // forces growth; order is preserved through the rebuild.
        for i in 0..64u64 {
            q.push(SimTime(i * 3), i, i);
        }
        assert!(q.ring_len() > 2, "ring should have grown");
        let order: Vec<u64> = drain(&mut q).into_iter().map(|(_, _, x)| x).collect();
        assert_eq!(order, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn calendar_ring_is_capped() {
        let q: CalendarQueue<u8> = CalendarQueue::with_buckets(usize::MAX >> 8);
        assert_eq!(q.ring_len(), MAX_BUCKETS);
    }

    #[test]
    fn empty_queue_behaviour() {
        for backend in QueueBackend::ALL {
            let mut q = backend.build::<u8>();
            assert!(q.is_empty());
            assert_eq!(q.peek_key(), None);
            assert_eq!(q.pop(), None);
        }
    }
}
