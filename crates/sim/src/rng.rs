//! Seeded PRNG for reproducible simulation.
//!
//! SplitMix64 expands the user seed into Xoshiro256** state (the
//! initialization recommended by the xoshiro authors). We implement it
//! in-repo so runs are bit-stable across toolchain and dependency updates —
//! the equilibrium measurements in the experiments depend on exact replay.

/// Deterministic PRNG (Xoshiro256** seeded via SplitMix64).
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derives an independent child stream (e.g. one per node), stable in
    /// `label`.
    pub fn fork(&self, label: u64) -> SimRng {
        let mut sm = self.s[0] ^ self.s[3] ^ label.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)` using Lemire's rejection method.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Rejection sampling on the widening multiply keeps the draw unbiased.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= (u64::MAX - bound + 1) % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        if lo == hi {
            return lo;
        }
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli draw with probability `p` (clamped to [0, 1]).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element, or `None` if empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.below(items.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn forks_are_independent_and_stable() {
        let root = SimRng::new(7);
        let mut a1 = root.fork(0);
        let mut a2 = root.fork(0);
        let mut b = root.fork(1);
        assert_eq!(a1.next_u64(), a2.next_u64());
        assert_ne!(a1.next_u64(), b.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
        assert_eq!(rng.below(1), 0);
    }

    #[test]
    fn below_is_roughly_uniform() {
        let mut rng = SimRng::new(11);
        let mut buckets = [0u32; 5];
        for _ in 0..50_000 {
            buckets[rng.below(5) as usize] += 1;
        }
        for &b in &buckets {
            assert!((9_000..11_000).contains(&b), "bucket count {b}");
        }
    }

    #[test]
    fn range_inclusive() {
        let mut rng = SimRng::new(5);
        let mut saw_lo = false;
        let mut saw_hi = false;
        for _ in 0..10_000 {
            let v = rng.range(3, 5);
            assert!((3..=5).contains(&v));
            saw_lo |= v == 3;
            saw_hi |= v == 5;
        }
        assert!(saw_lo && saw_hi);
        assert_eq!(rng.range(9, 9), 9);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SimRng::new(13);
        let mut v: Vec<u32> = (0..20).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v, (0..20).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn choose_handles_empty() {
        let mut rng = SimRng::new(1);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
        assert_eq!(rng.choose(&[42]), Some(&42));
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_panics() {
        SimRng::new(1).below(0);
    }
}
