//! The discrete-event engine: event queue, node dispatch, timers, crashes.
//!
//! The queue itself is pluggable (see [`crate::queue`]): the engine keys
//! every event by `(time, insertion sequence)` and drains whichever
//! [`EventQueue`] backend the simulation was built with. Message payloads
//! are parked in an [`Arena`] while in flight, so queued events are small
//! PODs regardless of the protocol's message type.

use crate::queue::{EventQueue, QueueBackend};
use crate::{Arena, Meter, MsgRef, SimRng, SimTime, Trace, TraceEntry, WireMessage};
use prft_types::NodeId;
use std::collections::BTreeSet;

/// Handle to a pending timer, returned by [`Context::set_timer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(u64);

/// Network delay policy: decides when a message sent at `sent` from `from`
/// arrives at `to`. Must return a time `>= sent` (reliable channels: the
/// delay may be large but delivery is guaranteed — the paper's Section 3.3).
///
/// `Send` is a supertrait so a boxed model (and with it a whole
/// [`Simulation`]) can be built on one thread and run on another — the
/// `prft-lab` batch runner fans seeded runs across worker threads.
pub trait LinkModel: Send {
    /// Absolute delivery time for one message.
    fn deliver_at(&mut self, from: NodeId, to: NodeId, sent: SimTime, rng: &mut SimRng) -> SimTime;
}

impl LinkModel for Box<dyn LinkModel> {
    fn deliver_at(&mut self, from: NodeId, to: NodeId, sent: SimTime, rng: &mut SimRng) -> SimTime {
        (**self).deliver_at(from, to, sent, rng)
    }
}

/// A protocol participant.
///
/// Implementations receive callbacks from the engine and act through the
/// [`Context`]. All state lives inside the node; the engine never inspects
/// it.
pub trait Node {
    /// The protocol's message type.
    type Msg: Clone + WireMessage;

    /// Called once at time zero, before any delivery.
    fn on_start(&mut self, ctx: &mut Context<Self::Msg>) {
        let _ = ctx;
    }

    /// Called for each delivered message.
    fn on_message(&mut self, ctx: &mut Context<Self::Msg>, from: NodeId, msg: Self::Msg);

    /// Called when a timer set via [`Context::set_timer`] fires (unless
    /// cancelled).
    fn on_timer(&mut self, ctx: &mut Context<Self::Msg>, timer: TimerId);
}

/// What a node may do during a callback.
///
/// Actions are buffered and turned into events by the engine after the
/// callback returns, which keeps dispatch re-entrancy-free.
pub struct Context<'a, M> {
    me: NodeId,
    n: usize,
    domain: usize,
    now: SimTime,
    next_timer: &'a mut u64,
    actions: Vec<Action<M>>,
    rng: &'a mut SimRng,
}

enum Action<M> {
    Send { to: NodeId, msg: M },
    SetTimer { id: TimerId, fires: SimTime },
    CancelTimer(TimerId),
}

impl<'a, M: Clone + WireMessage> Context<'a, M> {
    /// This node's identity.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Total node count (committee plus any client actors).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Broadcast-domain size: how many nodes a [`Context::broadcast`]
    /// reaches. Equals [`Context::n`] unless the simulation hosts
    /// out-of-committee actors (clients), which address peers explicitly
    /// via [`Context::send`] instead of being broadcast targets.
    pub fn domain(&self) -> usize {
        self.domain
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's private randomness stream.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// Sends `msg` to `to` (including to self, which is delivered through
    /// the same network model).
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.actions.push(Action::Send { to, msg });
    }

    /// Broadcasts to every player **including self** (self-delivery has zero
    /// delay). Matching the paper, a player counts its own vote/commit like
    /// any other, so protocols need no self special-casing.
    pub fn broadcast(&mut self, msg: M) {
        for i in 0..self.domain {
            self.actions.push(Action::Send {
                to: NodeId(i),
                msg: self.clone_for_fanout(&msg),
            });
        }
    }

    /// Broadcasts to every player except self.
    pub fn broadcast_others(&mut self, msg: M) {
        for i in 0..self.domain {
            if i != self.me.0 {
                self.actions.push(Action::Send {
                    to: NodeId(i),
                    msg: self.clone_for_fanout(&msg),
                });
            }
        }
    }

    /// One broadcast copy: the clone is the accountable path's dominant
    /// memory cost (`O(n³κ)` Reveal payloads × n recipients), so it is
    /// metered (`engine.clone_bytes`) and a profiling scope.
    fn clone_for_fanout(&self, msg: &M) -> M {
        crate::obs::hooks::add_clone_bytes(msg.clone_cost_bytes() as u64);
        crate::obs::timed("broadcast_clone", || msg.clone())
    }

    /// Arms a timer that fires `delay` from now; returns its id.
    pub fn set_timer(&mut self, delay: SimTime) -> TimerId {
        let id = TimerId(*self.next_timer);
        *self.next_timer += 1;
        self.actions.push(Action::SetTimer {
            id,
            fires: self.now + delay,
        });
        id
    }

    /// Cancels a previously armed timer (no-op if already fired).
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.actions.push(Action::CancelTimer(id));
    }
}

/// Why [`Simulation::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained: the system is quiescent.
    Quiescent,
    /// The time horizon was reached with events still pending.
    HorizonReached,
    /// The event-count safety valve tripped (runaway protocol).
    EventLimit,
}

/// What a queued event does when dispatched. Delivery payloads live in
/// the simulation's [`Arena`]; the queue only carries the 4-byte handle.
#[derive(Debug, Clone, Copy)]
enum EventKind {
    Deliver { from: NodeId, msg: MsgRef },
    Timer(TimerId),
    Start,
}

/// The queue item: destination plus action. The `(at, seq)` key lives in
/// the queue itself.
#[derive(Debug, Clone, Copy)]
struct EventBody {
    to: NodeId,
    kind: EventKind,
}

/// A passive copy of a [`Simulation`]'s complete engine state at one
/// instant, taken with [`Simulation::snapshot`] and revived — any number
/// of times — with [`Simulation::restore`].
///
/// The snapshot captures everything the engine owns: nodes, the pending
/// event set (with exact `(time, seq)` keys, drained backend-neutrally),
/// the message arena (slot table *and* free-list, so outstanding
/// [`MsgRef`] handles and future slot assignments round-trip exactly),
/// the clock, sequence and timer counters, cancelled/crashed sets, the
/// broadcast domain, every RNG stream, the meter, the trace, and all
/// engine counters. It does **not** capture the link model (a boxed
/// trait object the caller re-supplies on restore) or the process-global
/// observability hooks (see `obs::hooks::snapshot`/`restore`).
pub struct SimSnapshot<N: Node> {
    nodes: Vec<N>,
    events: Vec<(SimTime, u64, EventBody)>,
    arena: Arena<N::Msg>,
    backend: QueueBackend,
    now: SimTime,
    seq: u64,
    next_timer: u64,
    cancelled: BTreeSet<TimerId>,
    crashed: BTreeSet<NodeId>,
    broadcast_domain: usize,
    rng: SimRng,
    node_rngs: Vec<SimRng>,
    meter: Meter,
    trace: Trace,
    events_dispatched: u64,
    peak_queue_depth: usize,
    queue_pushes: u64,
    queue_pops: u64,
    peak_arena_occupancy: usize,
    event_limit: u64,
}

impl<N: Node + Clone> Clone for SimSnapshot<N> {
    fn clone(&self) -> Self {
        SimSnapshot {
            nodes: self.nodes.clone(),
            events: self.events.clone(),
            arena: self.arena.clone(),
            backend: self.backend,
            now: self.now,
            seq: self.seq,
            next_timer: self.next_timer,
            cancelled: self.cancelled.clone(),
            crashed: self.crashed.clone(),
            broadcast_domain: self.broadcast_domain,
            rng: self.rng.clone(),
            node_rngs: self.node_rngs.clone(),
            meter: self.meter.clone(),
            trace: self.trace.clone(),
            events_dispatched: self.events_dispatched,
            peak_queue_depth: self.peak_queue_depth,
            queue_pushes: self.queue_pushes,
            queue_pops: self.queue_pops,
            peak_arena_occupancy: self.peak_arena_occupancy,
            event_limit: self.event_limit,
        }
    }
}

impl<N: Node> SimSnapshot<N> {
    /// Virtual time at which the snapshot was taken.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events captured in the snapshot.
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// The queue backend the source simulation was draining (the default
    /// backend for [`Simulation::restore`]).
    pub fn backend(&self) -> QueueBackend {
        self.backend
    }
}

/// The simulation: `n` nodes, a link model, an event queue, and meters.
pub struct Simulation<N: Node> {
    nodes: Vec<N>,
    link: Box<dyn LinkModel>,
    backend: QueueBackend,
    queue: Box<dyn EventQueue<EventBody>>,
    arena: Arena<N::Msg>,
    now: SimTime,
    seq: u64,
    next_timer: u64,
    // Determinism audit (see the PR-1 `replica.rs` regression): these sets
    // are only ever probed (`contains`/`insert`/`remove`), never iterated,
    // so a `HashSet` would be replay-safe today — but `BTreeSet` makes the
    // ordered iteration *guarantee* structural, so a future `for` loop over
    // them cannot quietly reintroduce per-instance hash-order randomness.
    cancelled: BTreeSet<TimerId>,
    crashed: BTreeSet<NodeId>,
    broadcast_domain: usize,
    rng: SimRng,
    node_rngs: Vec<SimRng>,
    meter: Meter,
    trace: Trace,
    events_dispatched: u64,
    peak_queue_depth: usize,
    queue_pushes: u64,
    queue_pops: u64,
    peak_arena_occupancy: usize,
    /// Safety valve: maximum number of dispatched events per `run` call.
    pub event_limit: u64,
}

impl<N: Node> Simulation<N> {
    /// Builds a simulation over `nodes` with the given link model and
    /// seed, draining the default queue backend.
    ///
    /// # Panics
    /// Panics if `nodes` is empty.
    pub fn new(nodes: Vec<N>, link: Box<dyn LinkModel>, seed: u64) -> Self {
        Simulation::with_backend(nodes, link, seed, QueueBackend::default())
    }

    /// Builds a simulation draining the given queue `backend`. The backend
    /// never changes results — pop order is pinned identical across
    /// backends — only speed.
    ///
    /// # Panics
    /// Panics if `nodes` is empty.
    pub fn with_backend(
        nodes: Vec<N>,
        link: Box<dyn LinkModel>,
        seed: u64,
        backend: QueueBackend,
    ) -> Self {
        assert!(!nodes.is_empty(), "committee must be non-empty");
        let root = SimRng::new(seed);
        let node_rngs = (0..nodes.len()).map(|i| root.fork(1 + i as u64)).collect();
        let n = nodes.len();
        let mut sim = Simulation {
            nodes,
            link,
            backend,
            queue: backend.build(),
            arena: Arena::new(),
            now: SimTime::ZERO,
            seq: 0,
            next_timer: 0,
            cancelled: BTreeSet::new(),
            crashed: BTreeSet::new(),
            broadcast_domain: n,
            rng: root.fork(0),
            node_rngs,
            meter: Meter::new(),
            trace: Trace::new(),
            events_dispatched: 0,
            peak_queue_depth: 0,
            queue_pushes: 0,
            queue_pops: 0,
            peak_arena_occupancy: 0,
            event_limit: 50_000_000,
        };
        for i in 0..n {
            sim.push(SimTime::ZERO, NodeId(i), EventKind::Start);
        }
        sim
    }

    fn push(&mut self, at: SimTime, to: NodeId, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue_pushes += 1;
        let queue = &mut self.queue;
        crate::obs::timed("queue_push", || queue.push(at, seq, EventBody { to, kind }));
        self.peak_queue_depth = self.peak_queue_depth.max(self.queue.len());
    }

    /// Pops the next event, maintaining the pop counter and profiling scope.
    fn pop(&mut self) -> Option<(SimTime, u64, EventBody)> {
        let queue = &mut self.queue;
        let popped = crate::obs::timed("queue_pop", || queue.pop());
        if popped.is_some() {
            self.queue_pops += 1;
        }
        popped
    }

    /// Parks a payload in the arena, maintaining the occupancy high-water
    /// mark.
    fn park(&mut self, msg: N::Msg) -> MsgRef {
        let r = self.arena.insert(msg);
        self.peak_arena_occupancy = self.peak_arena_occupancy.max(self.arena.len());
        r
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.nodes.len()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Immutable access to a node.
    pub fn node(&self, id: NodeId) -> &N {
        &self.nodes[id.0]
    }

    /// Mutable access to a node (for harness-side injection between runs).
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        &mut self.nodes[id.0]
    }

    /// Iterates all nodes.
    pub fn nodes(&self) -> impl Iterator<Item = &N> {
        self.nodes.iter()
    }

    /// The message meter.
    pub fn meter(&self) -> &Meter {
        &self.meter
    }

    /// Which event-queue backend this simulation drains.
    pub fn queue_backend(&self) -> QueueBackend {
        self.backend
    }

    /// Number of events currently pending in the queue.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The deepest the event queue has ever been (bench observability).
    pub fn peak_queue_depth(&self) -> usize {
        self.peak_queue_depth
    }

    /// Total events dispatched across every `run`/`step` call so far
    /// (discarded events — crashed receivers, cancelled timers — are not
    /// dispatched and do not count).
    pub fn events_dispatched(&self) -> u64 {
        self.events_dispatched
    }

    /// Number of messages currently in flight (parked in the arena).
    pub fn in_flight_messages(&self) -> usize {
        self.arena.len()
    }

    /// Total events ever pushed onto the queue (deliveries, timers, starts).
    pub fn queue_pushes(&self) -> u64 {
        self.queue_pushes
    }

    /// Total events ever popped off the queue (dispatched *or* discarded).
    pub fn queue_pops(&self) -> u64 {
        self.queue_pops
    }

    /// The most messages ever simultaneously in flight (arena high-water).
    pub fn peak_arena_occupancy(&self) -> usize {
        self.peak_arena_occupancy
    }

    /// This simulation's engine-level observability registry: every
    /// protocol-independent counter and gauge the engine maintains, under
    /// `engine.*` keys, plus the per-kind send meter under `send.*`.
    ///
    /// All values derive from the pinned dispatch order, so the registry
    /// is identical across queue backends and worker thread counts.
    pub fn observability(&self) -> crate::obs::ObsRegistry {
        let mut reg = crate::obs::ObsRegistry::new();
        reg.add("engine.events_dispatched", self.events_dispatched);
        reg.add("engine.queue_pushes", self.queue_pushes);
        reg.add("engine.queue_pops", self.queue_pops);
        reg.gauge_max("engine.peak_queue_depth", self.peak_queue_depth as u64);
        reg.gauge_max(
            "engine.peak_arena_occupancy",
            self.peak_arena_occupancy as u64,
        );
        for (kind, stats) in self.meter.iter() {
            reg.add(&format!("send.{kind}.msgs"), stats.count);
            reg.add(&format!("send.{kind}.bytes"), stats.bytes);
        }
        reg
    }

    /// Resets the meter (e.g. after warm-up rounds).
    pub fn reset_meter(&mut self) {
        self.meter.reset();
    }

    /// The message trace (enable with [`Simulation::set_tracing`]).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Enables or disables delivery tracing.
    pub fn set_tracing(&mut self, on: bool) {
        self.trace.set_enabled(on);
    }

    /// Restricts [`Context::broadcast`] / [`Context::broadcast_others`] to
    /// the first `domain` nodes. Out-of-domain actors (e.g. a client
    /// population appended after the committee) still send and receive
    /// point-to-point via [`Context::send`]; they are simply not broadcast
    /// targets, so protocol fan-out stays O(committee), not O(nodes).
    ///
    /// # Panics
    /// Panics unless `1 <= domain <= n`.
    pub fn set_broadcast_domain(&mut self, domain: usize) {
        assert!(
            (1..=self.nodes.len()).contains(&domain),
            "broadcast domain must be within the node population"
        );
        self.broadcast_domain = domain;
    }

    /// The current broadcast-domain size (see
    /// [`Simulation::set_broadcast_domain`]).
    pub fn broadcast_domain(&self) -> usize {
        self.broadcast_domain
    }

    /// Marks a node crashed: it receives no further deliveries or timers and
    /// its pending events are discarded on dispatch. Models the CFT column.
    pub fn crash(&mut self, node: NodeId) {
        self.crashed.insert(node);
    }

    /// Un-crashes a node (recovery); it resumes receiving *new* messages.
    pub fn recover(&mut self, node: NodeId) {
        self.crashed.remove(&node);
    }

    /// Whether a node is currently crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.crashed.contains(&node)
    }

    /// Injects a message from outside the system (e.g. a client submitting a
    /// transaction), delivered to `to` at absolute time `at` claiming sender
    /// `from`.
    pub fn inject(&mut self, at: SimTime, from: NodeId, to: NodeId, msg: N::Msg) {
        let msg = self.park(msg);
        self.push(at.max(self.now), to, EventKind::Deliver { from, msg });
    }

    /// Frees engine-side resources of an event dropped without dispatch
    /// (crashed receiver): a parked delivery payload must release its
    /// arena slot.
    fn discard(&mut self, kind: EventKind) {
        if let EventKind::Deliver { msg, .. } = kind {
            drop(self.arena.take(msg));
        }
    }

    /// Runs a node callback and converts its buffered actions into events.
    fn dispatch(&mut self, to: NodeId, kind: EventKind) {
        let mut ctx = Context {
            me: to,
            n: self.nodes.len(),
            domain: self.broadcast_domain,
            now: self.now,
            next_timer: &mut self.next_timer,
            actions: Vec::new(),
            rng: &mut self.node_rngs[to.0],
        };
        match kind {
            EventKind::Start => self.nodes[to.0].on_start(&mut ctx),
            EventKind::Deliver { from, msg } => {
                let msg = self.arena.take(msg);
                self.nodes[to.0].on_message(&mut ctx, from, msg)
            }
            EventKind::Timer(id) => self.nodes[to.0].on_timer(&mut ctx, id),
        }
        let actions = ctx.actions;
        for action in actions {
            match action {
                Action::Send { to: dest, msg } => {
                    self.meter.record(msg.kind(), msg.wire_bytes());
                    let at = if dest == to {
                        self.now // self-delivery is immediate
                    } else {
                        let t = self.link.deliver_at(to, dest, self.now, &mut self.rng);
                        debug_assert!(t >= self.now, "link model may not travel back in time");
                        t.max(self.now)
                    };
                    self.trace.record(TraceEntry {
                        at,
                        from: to,
                        to: dest,
                        kind: msg.kind(),
                    });
                    let msg = self.park(msg);
                    self.push(at, dest, EventKind::Deliver { from: to, msg });
                }
                Action::SetTimer { id, fires } => {
                    self.push(fires, to, EventKind::Timer(id));
                }
                Action::CancelTimer(id) => {
                    self.cancelled.insert(id);
                }
            }
        }
    }

    /// Runs until the queue drains (or the safety valve trips).
    pub fn run(&mut self) -> RunOutcome {
        self.run_until(SimTime::MAX)
    }

    /// Runs until the queue drains or virtual time would pass `horizon`.
    /// Events at exactly `horizon` are processed.
    pub fn run_until(&mut self, horizon: SimTime) -> RunOutcome {
        self.run_bounded(horizon, true)
    }

    /// Runs until the queue drains or the next event would occur at or
    /// after `t`: every event strictly before `t` is processed, events at
    /// `t` stay pending. This is the segment primitive a scheduled-fault
    /// driver needs — run up to a boundary, apply external changes
    /// (crash/recover/inject/swap) "at the start of tick `t`", resume —
    /// without any off-by-one at `t = 0` and without touching the queue
    /// order, so determinism is preserved exactly.
    pub fn run_before(&mut self, t: SimTime) -> RunOutcome {
        self.run_bounded(t, false)
    }

    fn run_bounded(&mut self, bound: SimTime, inclusive: bool) -> RunOutcome {
        let mut dispatched = 0u64;
        while let Some((at, _seq)) = self.queue.peek_key() {
            let past_bound = if inclusive { at > bound } else { at >= bound };
            if past_bound {
                return RunOutcome::HorizonReached;
            }
            if dispatched >= self.event_limit {
                return RunOutcome::EventLimit;
            }
            let (at, _, body) = self.pop().expect("peeked");
            debug_assert!(at >= self.now, "time must be monotone");
            self.now = at;
            if self.crashed.contains(&body.to) {
                self.discard(body.kind); // crashed nodes see nothing
                continue;
            }
            if let EventKind::Timer(id) = &body.kind {
                if self.cancelled.remove(id) {
                    continue;
                }
            }
            dispatched += 1;
            self.events_dispatched += 1;
            self.dispatch(body.to, body.kind);
        }
        RunOutcome::Quiescent
    }

    /// Captures the complete engine state as a [`SimSnapshot`].
    ///
    /// Takes `&mut self` because the only backend-neutral way to read the
    /// pending event set is to drain it: events are popped in dispatch
    /// order (identical across backends, which is exactly what makes the
    /// snapshot backend-portable), recorded with their original
    /// `(time, seq)` keys, and re-pushed into a freshly built queue of the
    /// same backend. Observable behavior is unchanged: a fresh calendar
    /// queue accepts the (sorted) re-pushes with its cursor at zero and
    /// then pops them in the same pinned order, and `queue_pushes` /
    /// `queue_pops` / `peak_queue_depth` are maintained outside the
    /// backend so the drain/rebuild does not perturb them.
    ///
    /// The snapshot is independent of the live simulation — both can keep
    /// running — and one snapshot can seed many forks.
    pub fn snapshot(&mut self) -> SimSnapshot<N>
    where
        N: Clone,
    {
        let mut events = Vec::with_capacity(self.queue.len());
        while let Some(entry) = self.queue.pop() {
            events.push(entry);
        }
        self.queue = self.backend.build();
        for &(at, seq, body) in &events {
            self.queue.push(at, seq, body);
        }
        SimSnapshot {
            nodes: self.nodes.clone(),
            events,
            arena: self.arena.clone(),
            backend: self.backend,
            now: self.now,
            seq: self.seq,
            next_timer: self.next_timer,
            cancelled: self.cancelled.clone(),
            crashed: self.crashed.clone(),
            broadcast_domain: self.broadcast_domain,
            rng: self.rng.clone(),
            node_rngs: self.node_rngs.clone(),
            meter: self.meter.clone(),
            trace: self.trace.clone(),
            events_dispatched: self.events_dispatched,
            peak_queue_depth: self.peak_queue_depth,
            queue_pushes: self.queue_pushes,
            queue_pops: self.queue_pops,
            peak_arena_occupancy: self.peak_arena_occupancy,
            event_limit: self.event_limit,
        }
    }

    /// Revives a simulation from `snapshot`, draining the backend the
    /// snapshot was taken under.
    ///
    /// The link model is not part of the snapshot (it is a boxed trait
    /// object the engine cannot clone); the caller re-supplies it. For a
    /// faithful fork, pass a link model in the same state as the
    /// original's at capture time — for the stateless models used
    /// throughout this workspace, an identically configured fresh
    /// instance.
    pub fn restore(snapshot: &SimSnapshot<N>, link: Box<dyn LinkModel>) -> Simulation<N>
    where
        N: Clone,
    {
        Simulation::restore_with_backend(snapshot, link, snapshot.backend)
    }

    /// Revives a simulation from `snapshot` onto an explicitly chosen
    /// queue backend — pop order is pinned identical across backends, so
    /// a snapshot taken under one backend replays byte-identically under
    /// another.
    pub fn restore_with_backend(
        snapshot: &SimSnapshot<N>,
        link: Box<dyn LinkModel>,
        backend: QueueBackend,
    ) -> Simulation<N>
    where
        N: Clone,
    {
        let mut queue = backend.build();
        for &(at, seq, body) in &snapshot.events {
            queue.push(at, seq, body);
        }
        Simulation {
            nodes: snapshot.nodes.clone(),
            link,
            backend,
            queue,
            arena: snapshot.arena.clone(),
            now: snapshot.now,
            seq: snapshot.seq,
            next_timer: snapshot.next_timer,
            cancelled: snapshot.cancelled.clone(),
            crashed: snapshot.crashed.clone(),
            broadcast_domain: snapshot.broadcast_domain,
            rng: snapshot.rng.clone(),
            node_rngs: snapshot.node_rngs.clone(),
            meter: snapshot.meter.clone(),
            trace: snapshot.trace.clone(),
            events_dispatched: snapshot.events_dispatched,
            peak_queue_depth: snapshot.peak_queue_depth,
            queue_pushes: snapshot.queue_pushes,
            queue_pops: snapshot.queue_pops,
            peak_arena_occupancy: snapshot.peak_arena_occupancy,
            event_limit: snapshot.event_limit,
        }
    }

    /// Processes exactly one event if one exists at or before `horizon`.
    pub fn step(&mut self) -> bool {
        if let Some((at, _, body)) = self.pop() {
            self.now = at;
            if self.crashed.contains(&body.to) {
                self.discard(body.kind);
                return true;
            }
            if let EventKind::Timer(id) = &body.kind {
                if self.cancelled.remove(id) {
                    return true;
                }
            }
            self.events_dispatched += 1;
            self.dispatch(body.to, body.kind);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConstantDelay;

    #[derive(Clone, Debug)]
    enum TestMsg {
        Hello(u32),
    }

    impl WireMessage for TestMsg {
        fn kind(&self) -> &'static str {
            "Hello"
        }
        fn wire_bytes(&self) -> usize {
            4
        }
    }

    #[derive(Clone)]
    struct Echo {
        received: Vec<(NodeId, u32)>,
        fired: Vec<TimerId>,
    }

    impl Echo {
        fn new() -> Self {
            Echo {
                received: Vec::new(),
                fired: Vec::new(),
            }
        }
    }

    impl Node for Echo {
        type Msg = TestMsg;
        fn on_start(&mut self, ctx: &mut Context<TestMsg>) {
            if ctx.me() == NodeId(0) {
                ctx.broadcast(TestMsg::Hello(1));
            }
        }
        fn on_message(&mut self, _ctx: &mut Context<TestMsg>, from: NodeId, msg: TestMsg) {
            let TestMsg::Hello(v) = msg;
            self.received.push((from, v));
        }
        fn on_timer(&mut self, _ctx: &mut Context<TestMsg>, timer: TimerId) {
            self.fired.push(timer);
        }
    }

    fn sim(n: usize) -> Simulation<Echo> {
        Simulation::new(
            (0..n).map(|_| Echo::new()).collect(),
            Box::new(ConstantDelay(SimTime(5))),
            1,
        )
    }

    #[test]
    fn broadcast_reaches_everyone_including_self() {
        let mut s = sim(3);
        assert_eq!(s.run(), RunOutcome::Quiescent);
        for i in 0..3 {
            assert_eq!(s.node(NodeId(i)).received, vec![(NodeId(0), 1)]);
        }
    }

    #[test]
    fn self_delivery_is_immediate_and_others_are_delayed() {
        let mut s = sim(2);
        s.set_tracing(true);
        s.run();
        let trace = s.trace().entries();
        let self_d = trace.iter().find(|e| e.to == NodeId(0)).unwrap();
        let other_d = trace.iter().find(|e| e.to == NodeId(1)).unwrap();
        assert_eq!(self_d.at, SimTime(0));
        assert_eq!(other_d.at, SimTime(5));
    }

    #[test]
    fn meter_counts_broadcast_fanout() {
        let mut s = sim(4);
        s.run();
        assert_eq!(s.meter().kind("Hello").count, 4);
        assert_eq!(s.meter().kind("Hello").bytes, 16);
    }

    #[test]
    fn crashed_node_receives_nothing() {
        let mut s = sim(3);
        s.crash(NodeId(2));
        s.run();
        assert!(s.node(NodeId(2)).received.is_empty());
        assert_eq!(s.node(NodeId(1)).received.len(), 1);
    }

    #[test]
    fn injection_delivers_at_requested_time() {
        let mut s = sim(2);
        s.inject(SimTime(100), NodeId(9), NodeId(1), TestMsg::Hello(42));
        s.run();
        assert!(s.node(NodeId(1)).received.contains(&(NodeId(9), 42)));
        assert_eq!(s.now(), SimTime(100));
    }

    #[test]
    fn run_before_excludes_the_boundary() {
        let mut s = sim(2);
        s.inject(SimTime(100), NodeId(9), NodeId(1), TestMsg::Hello(42));
        // run_before(100) processes the t=0/t=5 start traffic but leaves
        // the event at exactly 100 pending …
        assert_eq!(s.run_before(SimTime(100)), RunOutcome::HorizonReached);
        assert!(!s.node(NodeId(1)).received.contains(&(NodeId(9), 42)));
        // … and run_before(0) processes nothing at all.
        let mut fresh = sim(2);
        assert_eq!(fresh.run_before(SimTime(0)), RunOutcome::HorizonReached);
        assert_eq!(fresh.now(), SimTime(0));
        // Crashing between the segments drops the pending boundary event.
        s.crash(NodeId(1));
        assert_eq!(s.run_until(SimTime(200)), RunOutcome::Quiescent);
        assert!(!s.node(NodeId(1)).received.contains(&(NodeId(9), 42)));
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut s = sim(2);
        s.inject(SimTime(100), NodeId(9), NodeId(1), TestMsg::Hello(42));
        assert_eq!(s.run_until(SimTime(50)), RunOutcome::HorizonReached);
        assert!(!s.node(NodeId(1)).received.contains(&(NodeId(9), 42)));
        assert_eq!(s.run_until(SimTime(100)), RunOutcome::Quiescent);
        assert!(s.node(NodeId(1)).received.contains(&(NodeId(9), 42)));
    }

    struct TimerNode {
        fired_at: Vec<SimTime>,
    }
    impl Node for TimerNode {
        type Msg = TestMsg;
        fn on_start(&mut self, ctx: &mut Context<TestMsg>) {
            let keep = ctx.set_timer(SimTime(10));
            let drop_ = ctx.set_timer(SimTime(20));
            ctx.cancel_timer(drop_);
            let _ = keep;
        }
        fn on_message(&mut self, _: &mut Context<TestMsg>, _: NodeId, _: TestMsg) {}
        fn on_timer(&mut self, ctx: &mut Context<TestMsg>, _: TimerId) {
            self.fired_at.push(ctx.now());
            // Re-arm once at t=10, then stay quiet.
            if ctx.now() == SimTime(10) {
                ctx.set_timer(SimTime(7));
            }
        }
    }

    #[test]
    fn timers_fire_and_cancel() {
        let mut s: Simulation<TimerNode> = Simulation::new(
            vec![TimerNode { fired_at: vec![] }],
            Box::new(ConstantDelay(SimTime(1))),
            1,
        );
        assert_eq!(s.run(), RunOutcome::Quiescent);
        // Fires at 10 and at the re-armed 17; the cancelled t=20 timer never
        // fires (though draining its dead event does advance the clock).
        assert_eq!(s.node(NodeId(0)).fired_at, vec![SimTime(10), SimTime(17)]);
    }

    #[test]
    fn broadcast_others_skips_self() {
        struct OthersOnly {
            received: u32,
        }
        impl Node for OthersOnly {
            type Msg = TestMsg;
            fn on_start(&mut self, ctx: &mut Context<TestMsg>) {
                if ctx.me() == NodeId(0) {
                    ctx.broadcast_others(TestMsg::Hello(1));
                }
            }
            fn on_message(&mut self, _: &mut Context<TestMsg>, _: NodeId, _: TestMsg) {
                self.received += 1;
            }
            fn on_timer(&mut self, _: &mut Context<TestMsg>, _: TimerId) {}
        }
        let mut s: Simulation<OthersOnly> = Simulation::new(
            (0..3).map(|_| OthersOnly { received: 0 }).collect(),
            Box::new(ConstantDelay(SimTime(1))),
            2,
        );
        s.run();
        assert_eq!(s.node(NodeId(0)).received, 0, "sender excluded");
        assert_eq!(s.node(NodeId(1)).received, 1);
        assert_eq!(s.node(NodeId(2)).received, 1);
        assert_eq!(s.meter().kind("Hello").count, 2);
    }

    #[test]
    fn broadcast_domain_excludes_appended_actors() {
        let mut s = sim(5);
        s.set_broadcast_domain(3);
        assert_eq!(s.broadcast_domain(), 3);
        s.run();
        // Node 0's broadcast reached only the domain …
        for i in 0..3 {
            assert_eq!(s.node(NodeId(i)).received.len(), 1);
        }
        // … while the out-of-domain actors heard nothing.
        assert!(s.node(NodeId(3)).received.is_empty());
        assert!(s.node(NodeId(4)).received.is_empty());
        assert_eq!(s.meter().kind("Hello").count, 3);
    }

    #[test]
    #[should_panic(expected = "broadcast domain")]
    fn broadcast_domain_must_fit_population() {
        let mut s = sim(3);
        s.set_broadcast_domain(4);
    }

    #[test]
    fn recover_resumes_delivery() {
        let mut s = sim(3);
        s.crash(NodeId(1));
        s.recover(NodeId(1));
        assert!(!s.is_crashed(NodeId(1)));
        s.run();
        assert_eq!(
            s.node(NodeId(1)).received.len(),
            1,
            "recovered before start"
        );
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let run = |seed: u64| {
            let mut s = Simulation::new(
                (0..5).map(|_| Echo::new()).collect::<Vec<_>>(),
                Box::new(ConstantDelay(SimTime(3))),
                seed,
            );
            s.set_tracing(true);
            s.run();
            s.trace().entries().to_vec()
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn backends_produce_identical_traces() {
        let run = |backend: QueueBackend| {
            let mut s: Simulation<Echo> = Simulation::with_backend(
                (0..6).map(|_| Echo::new()).collect(),
                Box::new(ConstantDelay(SimTime(3))),
                11,
                backend,
            );
            s.set_tracing(true);
            s.inject(SimTime(40), NodeId(9), NodeId(2), TestMsg::Hello(7));
            s.run();
            (s.trace().entries().to_vec(), s.events_dispatched())
        };
        let heap = run(QueueBackend::Heap);
        let calendar = run(QueueBackend::Calendar);
        assert_eq!(heap, calendar);
        assert!(heap.1 > 0);
    }

    #[test]
    fn engine_counters_track_queue_pressure() {
        let mut s = sim(4);
        assert_eq!(s.queue_backend(), QueueBackend::Calendar);
        // Four Start events are pending before the run.
        assert_eq!(s.queue_len(), 4);
        s.run();
        assert_eq!(s.queue_len(), 0);
        // 4 starts + 4 deliveries dispatched; the broadcast put 4
        // deliveries on top of 3 remaining starts.
        assert_eq!(s.events_dispatched(), 8);
        assert_eq!(s.peak_queue_depth(), 7);
        assert_eq!(s.in_flight_messages(), 0, "arena drained with the queue");
    }

    #[test]
    fn observability_registry_tracks_engine_counters() {
        let mut s = sim(4);
        crate::obs::hooks::reset();
        s.run();
        let reg = s.observability();
        assert_eq!(reg.counter("engine.events_dispatched"), 8);
        assert_eq!(
            reg.counter("engine.queue_pushes"),
            s.queue_pushes(),
            "registry mirrors the accessor"
        );
        // Every push was eventually popped (the queue drained).
        assert_eq!(s.queue_pushes(), s.queue_pops());
        assert_eq!(reg.gauge("engine.peak_queue_depth"), 7);
        // The broadcast parked 4 messages; the self-delivery is taken
        // before the other three, so the high-water mark is 4.
        assert_eq!(reg.gauge("engine.peak_arena_occupancy"), 4);
        // The send meter is mirrored per kind.
        assert_eq!(reg.counter("send.Hello.msgs"), 4);
        assert_eq!(reg.counter("send.Hello.bytes"), 16);
        // The broadcast cloned 4 copies of a 4-byte payload.
        let hooks = crate::obs::hooks::snapshot();
        assert_eq!(hooks.clone_bytes, 16);
    }

    #[test]
    fn crashed_receiver_frees_parked_messages() {
        let mut s = sim(3);
        s.crash(NodeId(2));
        s.run();
        // The broadcast to the crashed node was discarded, not leaked.
        assert_eq!(s.in_flight_messages(), 0);
    }

    /// Runs `s` to completion and returns the observable artifacts a fork
    /// must reproduce byte-for-byte.
    fn finish(mut s: Simulation<Echo>) -> (Vec<TraceEntry>, crate::obs::ObsRegistry, SimTime) {
        s.run();
        (s.trace().entries().to_vec(), s.observability(), s.now())
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        let build = || {
            let mut s = sim(4);
            s.set_tracing(true);
            s.inject(SimTime(40), NodeId(9), NodeId(2), TestMsg::Hello(7));
            s.inject(SimTime(80), NodeId(9), NodeId(3), TestMsg::Hello(8));
            s
        };
        // Reference: run uninterrupted.
        let reference = finish(build());
        // Fork: run to just before t=40, snapshot, restore, run to end.
        let mut s = build();
        s.run_before(SimTime(40));
        let snap = s.snapshot();
        let forked = finish(Simulation::restore(
            &snap,
            Box::new(ConstantDelay(SimTime(5))),
        ));
        assert_eq!(forked, reference);
        // The original keeps running correctly after being snapshotted.
        assert_eq!(finish(s), reference);
    }

    #[test]
    fn snapshot_is_idempotent_and_forks_are_independent() {
        let mut s = sim(3);
        s.set_tracing(true);
        s.inject(SimTime(30), NodeId(9), NodeId(1), TestMsg::Hello(1));
        s.run_before(SimTime(30));
        let first = s.snapshot();
        let second = s.snapshot();
        assert_eq!(first.now(), second.now());
        assert_eq!(first.pending_events(), second.pending_events());
        let link = || -> Box<dyn LinkModel> { Box::new(ConstantDelay(SimTime(5))) };
        let a = finish(Simulation::restore(&first, link()));
        let b = finish(Simulation::restore(&second, link()));
        assert_eq!(a, b);
        // One snapshot seeds many forks; a diverging fork (crash) does not
        // disturb a later fork from the same snapshot.
        let mut diverge = Simulation::restore(&first, link());
        diverge.crash(NodeId(1));
        diverge.run();
        let c = finish(Simulation::restore(&first, link()));
        assert_eq!(c, a);
    }

    #[test]
    fn snapshot_restores_across_backends() {
        let mut s: Simulation<Echo> = Simulation::with_backend(
            (0..5).map(|_| Echo::new()).collect(),
            Box::new(ConstantDelay(SimTime(3))),
            9,
            QueueBackend::Calendar,
        );
        s.set_tracing(true);
        s.inject(SimTime(25), NodeId(9), NodeId(4), TestMsg::Hello(3));
        s.run_before(SimTime(25));
        let snap = s.snapshot();
        assert_eq!(snap.backend(), QueueBackend::Calendar);
        let link = || -> Box<dyn LinkModel> { Box::new(ConstantDelay(SimTime(3))) };
        let heap = finish(Simulation::restore_with_backend(
            &snap,
            link(),
            QueueBackend::Heap,
        ));
        let calendar = finish(Simulation::restore(&snap, link()));
        assert_eq!(heap, calendar);
    }

    #[test]
    fn snapshot_round_trips_crashes_cancels_and_free_list() {
        // Exercise the cancelled-timer set, the crashed set, and arena
        // free-list recycling across a snapshot boundary.
        let mut s = sim(4);
        s.set_tracing(true);
        s.crash(NodeId(3));
        s.inject(SimTime(10), NodeId(9), NodeId(3), TestMsg::Hello(5)); // discarded
        s.inject(SimTime(50), NodeId(9), NodeId(1), TestMsg::Hello(6));
        s.run_before(SimTime(50));
        let snap = s.snapshot();
        let mut r = Simulation::restore(&snap, Box::new(ConstantDelay(SimTime(5))));
        assert!(r.is_crashed(NodeId(3)));
        assert_eq!(r.in_flight_messages(), s.in_flight_messages());
        assert_eq!(r.queue_len(), s.queue_len());
        assert_eq!(r.events_dispatched(), s.events_dispatched());
        r.run();
        assert!(r.node(NodeId(1)).received.contains(&(NodeId(9), 6)));
        assert!(r.node(NodeId(3)).received.is_empty());
        assert_eq!(r.in_flight_messages(), 0);
    }

    #[test]
    fn event_limit_stops_runaway() {
        struct Storm;
        impl Node for Storm {
            type Msg = TestMsg;
            fn on_start(&mut self, ctx: &mut Context<TestMsg>) {
                ctx.send(NodeId(0), TestMsg::Hello(0));
            }
            fn on_message(&mut self, ctx: &mut Context<TestMsg>, _: NodeId, _: TestMsg) {
                ctx.send(NodeId(0), TestMsg::Hello(0)); // infinite self-loop
            }
            fn on_timer(&mut self, _: &mut Context<TestMsg>, _: TimerId) {}
        }
        let mut s: Simulation<Storm> =
            Simulation::new(vec![Storm], Box::new(ConstantDelay(SimTime(0))), 1);
        s.event_limit = 1000;
        assert_eq!(s.run(), RunOutcome::EventLimit);
    }
}
