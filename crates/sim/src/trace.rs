//! Traces: delivery records for timeline rendering (paper Figure 2a) and
//! a [`ChromeTrace`] builder emitting Chrome Trace Event Format JSON.
//!
//! A [`Trace`] is the raw chronological record the engine fills in; a
//! [`ChromeTrace`] is an export surface — phase spans and message-delivery
//! instants assembled by a higher layer open directly in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`. One virtual tick is
//! rendered as one microsecond, the unit of the format's `ts`/`dur`
//! fields.

use crate::SimTime;
use prft_types::NodeId;
use std::fmt::Write as _;

/// One delivered message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Virtual time of delivery.
    pub at: SimTime,
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Message kind label.
    pub kind: &'static str,
}

/// A chronological record of deliveries (only populated when enabled on the
/// simulation — tracing every message is memory-heavy for large sweeps).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    entries: Vec<TraceEntry>,
    enabled: bool,
}

impl Trace {
    /// Creates a disabled trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Enables or disables recording.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a delivery if enabled.
    pub fn record(&mut self, entry: TraceEntry) {
        if self.enabled {
            self.entries.push(entry);
        }
    }

    /// All recorded entries in delivery order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Entries of one kind.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TraceEntry> + 'a {
        self.entries.iter().filter(move |e| e.kind == kind)
    }

    /// First delivery time of a kind, if any.
    pub fn first_of_kind(&self, kind: &str) -> Option<SimTime> {
        self.of_kind(kind).map(|e| e.at).next()
    }

    /// Clears the record.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

/// One event in a Chrome trace: a complete span (`"ph":"X"`) or an
/// instant (`"ph":"i"`).
#[derive(Debug, Clone, PartialEq, Eq)]
struct ChromeEvent {
    name: String,
    cat: &'static str,
    /// Duration in microseconds for a complete span; `None` for instants.
    dur: Option<u64>,
    ts: u64,
    pid: u32,
    tid: u32,
    args: Vec<(&'static str, u64)>,
}

/// Builder for a Chrome Trace Event Format JSON document.
///
/// Events render in insertion order, so a builder filled deterministically
/// (replicas in id order, events in virtual-time order) renders to a
/// byte-identical document every run — the golden-file tests rely on it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChromeTrace {
    threads: Vec<(u32, u32, String)>,
    events: Vec<ChromeEvent>,
}

impl ChromeTrace {
    /// An empty trace document.
    pub fn new() -> Self {
        ChromeTrace::default()
    }

    /// Names the track `(pid, tid)` — shown as the row label in Perfetto.
    pub fn thread_name(&mut self, pid: u32, tid: u32, name: &str) {
        self.threads.push((pid, tid, name.to_string()));
    }

    /// Adds a complete span (`ph:"X"`) lasting from `begin` to `end`
    /// virtual ticks on track `(pid, tid)`, with optional numeric args.
    #[allow(clippy::too_many_arguments)] // mirrors the format's event fields
    pub fn complete(
        &mut self,
        name: &str,
        cat: &'static str,
        pid: u32,
        tid: u32,
        begin: SimTime,
        end: SimTime,
        args: &[(&'static str, u64)],
    ) {
        self.events.push(ChromeEvent {
            name: name.to_string(),
            cat,
            dur: Some(end.0.saturating_sub(begin.0)),
            ts: begin.0,
            pid,
            tid,
            args: args.to_vec(),
        });
    }

    /// Adds an instant event (`ph:"i"`, thread scope) at `at` on track
    /// `(pid, tid)`.
    pub fn instant(
        &mut self,
        name: &str,
        cat: &'static str,
        pid: u32,
        tid: u32,
        at: SimTime,
        args: &[(&'static str, u64)],
    ) {
        self.events.push(ChromeEvent {
            name: name.to_string(),
            cat,
            dur: None,
            ts: at.0,
            pid,
            tid,
            args: args.to_vec(),
        });
    }

    /// Number of span/instant events recorded (metadata excluded).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no span or instant has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders the Chrome Trace Event Format JSON document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for (pid, tid, name) in &self.threads {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape_json(name)
            );
        }
        for e in &self.events {
            if !first {
                out.push(',');
            }
            first = false;
            let ph = if e.dur.is_some() { "X" } else { "i" };
            let _ = write!(
                out,
                "\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{ph}\",\"ts\":{}",
                escape_json(&e.name),
                e.cat,
                e.ts
            );
            if let Some(dur) = e.dur {
                let _ = write!(out, ",\"dur\":{dur}");
            } else {
                out.push_str(",\"s\":\"t\"");
            }
            let _ = write!(out, ",\"pid\":{},\"tid\":{}", e.pid, e.tid);
            if !e.args.is_empty() {
                out.push_str(",\"args\":{");
                for (i, (k, v)) in e.args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{k}\":{v}");
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("\n]}\n");
        out
    }
}

/// Escapes a string for embedding inside a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(at: u64, kind: &'static str) -> TraceEntry {
        TraceEntry {
            at: SimTime(at),
            from: NodeId(0),
            to: NodeId(1),
            kind,
        }
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new();
        t.record(entry(1, "Vote"));
        assert!(t.entries().is_empty());
    }

    #[test]
    fn enabled_trace_records() {
        let mut t = Trace::new();
        t.set_enabled(true);
        t.record(entry(1, "Vote"));
        t.record(entry(2, "Commit"));
        assert_eq!(t.entries().len(), 2);
        assert_eq!(t.of_kind("Vote").count(), 1);
        assert_eq!(t.first_of_kind("Commit"), Some(SimTime(2)));
        assert_eq!(t.first_of_kind("Final"), None);
    }

    #[test]
    fn clear_empties() {
        let mut t = Trace::new();
        t.set_enabled(true);
        t.record(entry(1, "Vote"));
        t.clear();
        assert!(t.entries().is_empty());
    }

    #[test]
    fn chrome_trace_renders_spans_instants_and_metadata() {
        let mut c = ChromeTrace::new();
        assert!(c.is_empty());
        c.thread_name(0, 1, "P1");
        c.complete(
            "Vote",
            "phase",
            0,
            1,
            SimTime(10),
            SimTime(25),
            &[("round", 3)],
        );
        c.instant("Commit", "msg", 0, 1, SimTime(12), &[("from", 2)]);
        assert_eq!(c.len(), 2);
        let json = c.render();
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains(
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":1,\
             \"args\":{\"name\":\"P1\"}}"
        ));
        assert!(json.contains(
            "{\"name\":\"Vote\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":10,\
             \"dur\":15,\"pid\":0,\"tid\":1,\"args\":{\"round\":3}}"
        ));
        assert!(json.contains(
            "{\"name\":\"Commit\",\"cat\":\"msg\",\"ph\":\"i\",\"ts\":12,\
             \"s\":\"t\",\"pid\":0,\"tid\":1,\"args\":{\"from\":2}}"
        ));
        assert!(json.ends_with("\n]}\n"));
    }

    #[test]
    fn chrome_trace_escapes_names() {
        let mut c = ChromeTrace::new();
        c.instant("a\"b\\c", "msg", 0, 0, SimTime(0), &[]);
        assert!(c.render().contains("\"name\":\"a\\\"b\\\\c\""));
        assert_eq!(escape_json("x\ny\u{1}"), "x\\ny\\u0001");
    }
}
