//! Message traces for timeline rendering (paper Figure 2a).

use crate::SimTime;
use prft_types::NodeId;

/// One delivered message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Virtual time of delivery.
    pub at: SimTime,
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Message kind label.
    pub kind: &'static str,
}

/// A chronological record of deliveries (only populated when enabled on the
/// simulation — tracing every message is memory-heavy for large sweeps).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    entries: Vec<TraceEntry>,
    enabled: bool,
}

impl Trace {
    /// Creates a disabled trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Enables or disables recording.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records a delivery if enabled.
    pub fn record(&mut self, entry: TraceEntry) {
        if self.enabled {
            self.entries.push(entry);
        }
    }

    /// All recorded entries in delivery order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Entries of one kind.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TraceEntry> + 'a {
        self.entries.iter().filter(move |e| e.kind == kind)
    }

    /// First delivery time of a kind, if any.
    pub fn first_of_kind(&self, kind: &str) -> Option<SimTime> {
        self.of_kind(kind).map(|e| e.at).next()
    }

    /// Clears the record.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(at: u64, kind: &'static str) -> TraceEntry {
        TraceEntry {
            at: SimTime(at),
            from: NodeId(0),
            to: NodeId(1),
            kind,
        }
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new();
        t.record(entry(1, "Vote"));
        assert!(t.entries().is_empty());
    }

    #[test]
    fn enabled_trace_records() {
        let mut t = Trace::new();
        t.set_enabled(true);
        t.record(entry(1, "Vote"));
        t.record(entry(2, "Commit"));
        assert_eq!(t.entries().len(), 2);
        assert_eq!(t.of_kind("Vote").count(), 1);
        assert_eq!(t.first_of_kind("Commit"), Some(SimTime(2)));
        assert_eq!(t.first_of_kind("Final"), None);
    }

    #[test]
    fn clear_empties() {
        let mut t = Trace::new();
        t.set_enabled(true);
        t.record(entry(1, "Vote"));
        t.clear();
        assert!(t.entries().is_empty());
    }
}
