//! Differential property test: the calendar queue and the reference heap
//! queue pop **byte-identical** `(time, seq, payload)` sequences under
//! random event schedules — arbitrary tick gaps, same-tick bursts,
//! interleaved push/pop, and peeks that settle the calendar cursor ahead
//! of later pushes — including the tie order at equal ticks.
//!
//! This is the contract that lets `QueueBackend` stay outside the
//! scenario fingerprint: if pop order ever diverged, every scenario
//! replay would diverge with it, so the property is driven hard here
//! (devstubs-proptest samples deterministic pseudo-random schedules).

use prft_sim::{CalendarQueue, EventQueue, HeapQueue, SimTime};
use proptest::prelude::*;

/// The popped `(tick, seq, payload)` stream of one backend.
type Popped = Vec<(u64, u64, u32)>;

/// One generated operation over both queues.
enum Op {
    /// Push at `last_popped + gap` — the loosest tick the ordering
    /// contract allows, which can land *behind* the calendar cursor
    /// after a peek settled it on a later pending entry.
    Push(u64),
    /// Pop one entry from each backend and record it.
    Pop,
    /// Peek without popping: advances the calendar's internal cursor
    /// (the state the monotone-time contract does NOT advance).
    Peek,
}

/// Applies one generated schedule to both backends and returns their
/// popped streams (schedule pops first, then a full drain).
fn apply_schedule(ops: &[Op]) -> (Popped, Popped) {
    let mut heap = HeapQueue::new();
    let mut calendar = CalendarQueue::with_buckets(64); // small ring: exercise overflow + resize
    let mut heap_pops = Vec::new();
    let mut cal_pops = Vec::new();
    let mut seq = 0u64;
    let mut payload = 0u32;
    // The engine contract both backends may rely on: pushes are never
    // earlier than the last popped tick, and seq is monotone.
    let mut last_popped = 0u64;
    for op in ops {
        match op {
            Op::Push(gap) => {
                let at = SimTime(last_popped + gap);
                EventQueue::push(&mut heap, at, seq, payload);
                EventQueue::push(&mut calendar, at, seq, payload);
                seq += 1;
                payload = payload.wrapping_mul(31).wrapping_add(1);
            }
            Op::Pop => {
                let h = EventQueue::pop(&mut heap);
                let c = EventQueue::pop(&mut calendar);
                if let Some((at, _, _)) = h {
                    last_popped = at.0;
                }
                heap_pops.extend(h.map(|(at, s, p)| (at.0, s, p)));
                cal_pops.extend(c.map(|(at, s, p)| (at.0, s, p)));
            }
            Op::Peek => {
                assert_eq!(
                    EventQueue::peek_key(&mut heap),
                    EventQueue::peek_key(&mut calendar),
                    "peek keys diverged"
                );
            }
        }
        assert_eq!(EventQueue::len(&heap), EventQueue::len(&calendar));
    }
    // Drain both to the end: whatever was left must agree too.
    while let Some((at, s, p)) = EventQueue::pop(&mut heap) {
        heap_pops.push((at.0, s, p));
    }
    while let Some((at, s, p)) = EventQueue::pop(&mut calendar) {
        cal_pops.push((at.0, s, p));
    }
    (heap_pops, cal_pops)
}

/// Decodes a sampled `(selector, gap)` pair: 0 pops, 1 peeks, the rest
/// push at `last_popped + gap`.
fn decode(ops: Vec<(u8, u64)>) -> Vec<Op> {
    ops.into_iter()
        .map(|(op, gap)| match op {
            0 => Op::Pop,
            1 => Op::Peek,
            _ => Op::Push(gap),
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Mixed schedules: ~3/5 pushes with gaps up to 3000 ticks (far past
    /// the 64-slot test ring, so the overflow heap and lazy resize are
    /// always in play), pops and cursor-settling peeks interleaved.
    #[test]
    fn backends_pop_identically(ops in proptest::collection::vec((0u8..5, 0u64..3_000), 1..400)) {
        let (heap, calendar) = apply_schedule(&decode(ops));
        prop_assert_eq!(heap, calendar);
    }

    /// Same-tick bursts: gaps drawn from {0, 1} pile many events onto the
    /// same tick, so the tie order (insertion sequence) carries the whole
    /// comparison.
    #[test]
    fn same_tick_bursts_keep_tie_order(ops in proptest::collection::vec((0u8..6, 0u64..2), 1..400)) {
        let (heap, calendar) = apply_schedule(&decode(ops));
        // Within a tick, seqs must come out strictly increasing.
        for w in heap.windows(2) {
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "tie order broke: {:?}", w);
            }
        }
        prop_assert_eq!(heap, calendar);
    }

    /// Pop/peek-heavy schedules: the queues spend most of the run nearly
    /// empty, exercising the calendar's empty/jump/rewind cursor paths —
    /// wide gaps settle the cursor far ahead, then contract-legal pushes
    /// land behind it.
    #[test]
    fn pop_heavy_schedules_agree(ops in proptest::collection::vec((0u8..4, 0u64..50_000), 1..200)) {
        let (heap, calendar) = apply_schedule(&decode(ops));
        prop_assert_eq!(heap, calendar);
    }
}
