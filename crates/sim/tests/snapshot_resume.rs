//! Property test pinning the checkpoint/fork contract at the engine
//! level: for a random committee size, seed, snapshot tick, and fault
//! schedule, `run_before(t); snapshot(); restore(); run to end` is
//! indistinguishable from an uninterrupted run — event traces, the
//! observability registry, node state, and every engine counter agree
//! exactly. Also pins snapshot idempotence (snapshotting twice at the
//! same tick yields equivalent snapshots and does not perturb the live
//! simulation) and backend portability (a snapshot taken under one queue
//! backend replays byte-identically restored onto the other).

use prft_sim::{
    ConstantDelay, Context, LinkModel, Node, ObsRegistry, QueueBackend, SimSnapshot, SimTime,
    Simulation, TimerId, TraceEntry, WireMessage,
};
use prft_types::NodeId;
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Chat(u64);

impl WireMessage for Chat {
    fn kind(&self) -> &'static str {
        "Chat"
    }
    fn wire_bytes(&self) -> usize {
        8
    }
}

/// A chatty node: broadcasts on start, re-arms a timer a bounded number
/// of times (timer delays and payloads drawn from the node RNG, so RNG
/// stream state is load-bearing), and occasionally replies to traffic.
#[derive(Clone, Debug, PartialEq)]
struct Gossip {
    rounds_left: u32,
    received: Vec<(NodeId, u64)>,
}

impl Node for Gossip {
    type Msg = Chat;

    fn on_start(&mut self, ctx: &mut Context<Chat>) {
        let v = ctx.rng().next_u64();
        ctx.broadcast(Chat(v));
        let delay = ctx.rng().range(5, 40);
        ctx.set_timer(SimTime(delay));
        // Arm-and-cancel so the cancelled set is non-trivially exercised.
        let doomed = ctx.set_timer(SimTime(1_000_000));
        ctx.cancel_timer(doomed);
    }

    fn on_message(&mut self, ctx: &mut Context<Chat>, from: NodeId, msg: Chat) {
        self.received.push((from, msg.0));
        if msg.0.is_multiple_of(7) && from != ctx.me() {
            ctx.send(from, Chat(msg.0 / 7));
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<Chat>, _timer: TimerId) {
        if self.rounds_left > 0 {
            self.rounds_left -= 1;
            let v = ctx.rng().next_u64();
            ctx.broadcast_others(Chat(v));
            let delay = ctx.rng().range(5, 40);
            ctx.set_timer(SimTime(delay));
        }
    }
}

/// One external action of the fault schedule, applied at a tick boundary.
#[derive(Clone, Copy, Debug)]
enum Fault {
    Crash(usize),
    Recover(usize),
    Inject(usize),
}

/// Decodes sampled `(tick, selector, node)` triples into a tick-sorted
/// fault schedule over `n` nodes.
fn schedule(raw: &[(u64, u8, usize)], n: usize) -> Vec<(u64, Fault)> {
    let mut out: Vec<(u64, Fault)> = raw
        .iter()
        .map(|&(tick, sel, node)| {
            let node = node % n;
            let fault = match sel % 3 {
                0 => Fault::Crash(node),
                1 => Fault::Recover(node),
                _ => Fault::Inject(node),
            };
            (tick, fault)
        })
        .collect();
    out.sort_by_key(|&(tick, _)| tick);
    out
}

fn apply(sim: &mut Simulation<Gossip>, fault: Fault, tick: u64) {
    match fault {
        Fault::Crash(i) => sim.crash(NodeId(i)),
        Fault::Recover(i) => sim.recover(NodeId(i)),
        // Payload ≡ 1 (mod 7): the out-of-committee sender NodeId(99)
        // must never be sent a reply.
        Fault::Inject(i) => sim.inject(SimTime(tick), NodeId(99), NodeId(i), Chat(tick * 7 + 1)),
    }
}

fn link() -> Box<dyn LinkModel> {
    Box::new(ConstantDelay(SimTime(3)))
}

fn build(n: usize, seed: u64, backend: QueueBackend) -> Simulation<Gossip> {
    let nodes = (0..n)
        .map(|_| Gossip {
            rounds_left: 4,
            received: Vec::new(),
        })
        .collect();
    let mut sim = Simulation::with_backend(nodes, link(), seed, backend);
    sim.set_tracing(true);
    sim
}

/// Everything observable about a finished run.
#[derive(Debug, PartialEq)]
struct Artifacts {
    trace: Vec<TraceEntry>,
    obs: ObsRegistry,
    nodes: Vec<Gossip>,
    now: SimTime,
    in_flight: usize,
}

fn finish(mut sim: Simulation<Gossip>, faults: &[(u64, Fault)], horizon: u64) -> Artifacts {
    for &(tick, fault) in faults {
        sim.run_before(SimTime(tick));
        apply(&mut sim, fault, tick);
    }
    sim.run_until(SimTime(horizon));
    Artifacts {
        trace: sim.trace().entries().to_vec(),
        obs: sim.observability(),
        nodes: sim.nodes().cloned().collect(),
        now: sim.now(),
        in_flight: sim.in_flight_messages(),
    }
}

/// Runs the schedule up to (exclusive) tick `t`, snapshots, and returns
/// (snapshot, remaining schedule).
fn snapshot_at(
    sim: &mut Simulation<Gossip>,
    faults: &[(u64, Fault)],
    t: u64,
) -> (SimSnapshot<Gossip>, Vec<(u64, Fault)>) {
    let (before, after): (Vec<_>, Vec<_>) = faults.iter().partition(|&&(tick, _)| tick < t);
    for &(tick, fault) in &before {
        sim.run_before(SimTime(tick));
        apply(sim, fault, tick);
    }
    sim.run_before(SimTime(t));
    (sim.snapshot(), after)
}

const HORIZON: u64 = 500;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline equivalence: snapshot + restore at a random tick under
    /// a random fault schedule reproduces the uninterrupted run exactly.
    #[test]
    fn restore_resumes_identically(
        n in 2usize..7,
        seed in 0u64..10_000,
        t in 1u64..400,
        raw in proptest::collection::vec((0u64..450, 0u8..3, 0usize..8), 0..6),
    ) {
        let faults = schedule(&raw, n);
        let reference = finish(build(n, seed, QueueBackend::Calendar), &faults, HORIZON);
        let mut live = build(n, seed, QueueBackend::Calendar);
        let (snap, rest) = snapshot_at(&mut live, &faults, t);
        let forked = finish(Simulation::restore(&snap, link()), &rest, HORIZON);
        prop_assert_eq!(&forked, &reference);
        // The live simulation the snapshot was drained from is unharmed.
        let resumed = finish(live, &rest, HORIZON);
        prop_assert_eq!(&resumed, &reference);
    }

    /// Snapshotting twice at the same tick is idempotent: both snapshots
    /// seed identical forks, and the double-drain leaves the live run
    /// unperturbed.
    #[test]
    fn snapshot_is_idempotent(
        n in 2usize..6,
        seed in 0u64..10_000,
        t in 1u64..300,
        raw in proptest::collection::vec((0u64..450, 0u8..3, 0usize..8), 0..4),
    ) {
        let faults = schedule(&raw, n);
        let reference = finish(build(n, seed, QueueBackend::Calendar), &faults, HORIZON);
        let mut live = build(n, seed, QueueBackend::Calendar);
        let (first, rest) = snapshot_at(&mut live, &faults, t);
        let second = live.snapshot();
        prop_assert_eq!(first.now(), second.now());
        prop_assert_eq!(first.pending_events(), second.pending_events());
        let a = finish(Simulation::restore(&first, link()), &rest, HORIZON);
        let b = finish(Simulation::restore(&second, link()), &rest, HORIZON);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &reference);
        let resumed = finish(live, &rest, HORIZON);
        prop_assert_eq!(&resumed, &reference);
    }

    /// A snapshot taken under either backend restores onto the other with
    /// byte-identical replay — pop order is pinned across backends, so
    /// checkpoints are backend-portable.
    #[test]
    fn restore_into_other_backend(
        n in 2usize..6,
        seed in 0u64..10_000,
        t in 1u64..300,
        capture_on_heap in any::<bool>(),
        raw in proptest::collection::vec((0u64..450, 0u8..3, 0usize..8), 0..4),
    ) {
        let (capture, other) = if capture_on_heap {
            (QueueBackend::Heap, QueueBackend::Calendar)
        } else {
            (QueueBackend::Calendar, QueueBackend::Heap)
        };
        let faults = schedule(&raw, n);
        let reference = finish(build(n, seed, capture), &faults, HORIZON);
        let mut live = build(n, seed, capture);
        let (snap, rest) = snapshot_at(&mut live, &faults, t);
        prop_assert_eq!(snap.backend(), capture);
        let same = finish(Simulation::restore(&snap, link()), &rest, HORIZON);
        let crossed = finish(
            Simulation::restore_with_backend(&snap, link(), other),
            &rest,
            HORIZON,
        );
        prop_assert_eq!(&same, &reference);
        prop_assert_eq!(&crossed, &reference);
    }
}
